exception Cannot_render of string

let fail fmt = Printf.ksprintf (fun m -> raise (Cannot_render m)) fmt

let literal = function
  | Value.Int n -> string_of_int n
  | Value.Bool true -> "TRUE"
  | Value.Bool false -> "FALSE"
  | Value.Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf

(* For each atom: an alias t<i>; for each variable: the list of
   qualified columns where it occurs; for each constant occurrence: a
   literal predicate. *)
type analysis = {
  from_clause : string list;
  var_columns : (string, string list) Hashtbl.t;  (* first occurrence first *)
  predicates : string list;
}

let analyze db (q : Cq.t) =
  let var_columns = Hashtbl.create 16 in
  let predicates = ref [] in
  let from_clause =
    List.mapi
      (fun i (a : Cq.atom) ->
        let r =
          match Database.relation_opt db a.rel with
          | Some r -> r
          | None -> fail "unknown relation %s" a.rel
        in
        let schema = Relation.schema r in
        if Array.length a.args <> Schema.arity schema then
          fail "atom %s has arity %d, schema says %d" a.rel
            (Array.length a.args) (Schema.arity schema);
        let alias = Printf.sprintf "t%d" i in
        Array.iteri
          (fun c term ->
            let column = Printf.sprintf "%s.%s" alias (Schema.attribute schema c) in
            match term with
            | Term.Const v ->
              predicates := Printf.sprintf "%s = %s" column (literal v) :: !predicates
            | Term.Var x ->
              let cols = Option.value ~default:[] (Hashtbl.find_opt var_columns x) in
              Hashtbl.replace var_columns x (cols @ [ column ]))
          a.args;
        Printf.sprintf "%s AS %s" a.rel alias)
      q.atoms
  in
  (* Join predicates: every later occurrence of a variable equals its
     first occurrence. *)
  let joins =
    Hashtbl.fold
      (fun _ cols acc ->
        match cols with
        | [] | [ _ ] -> acc
        | first :: rest ->
          List.map (fun c -> Printf.sprintf "%s = %s" first c) rest @ acc)
      var_columns []
  in
  {
    from_clause;
    var_columns;
    predicates = List.rev !predicates @ List.sort compare joins;
  }

let render ?(distinct = false) ?(limit = false) db (q : Cq.t) vars =
  if q.atoms = [] then "SELECT 1"
  else begin
    let a = analyze db q in
    let projection =
      match vars with
      | [] -> [ "1" ]
      | vars ->
        List.map
          (fun x ->
            match Hashtbl.find_opt a.var_columns x with
            | Some (col :: _) -> Printf.sprintf "%s AS %s" col x
            | Some [] | None -> fail "projection variable %s not in query" x)
          vars
    in
    let where =
      match a.predicates with
      | [] -> ""
      | ps -> "\nWHERE " ^ String.concat "\n  AND " ps
    in
    Printf.sprintf "SELECT %s%s\nFROM %s%s%s"
      (if distinct then "DISTINCT " else "")
      (String.concat ", " projection)
      (String.concat ", " a.from_clause)
      where
      (if limit then "\nLIMIT 1" else "")
  end

let select ?distinct db q vars =
  if vars = [] && q.Cq.atoms <> [] then
    fail "empty projection over a non-empty query; use Sqlgen.exists";
  render ?distinct db q vars

let exists db q =
  if q.Cq.atoms = [] then "SELECT 1" else render ~limit:true db q []
