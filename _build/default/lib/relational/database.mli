(** Database instances: named relations plus probe accounting.

    The probe counter mirrors the metric the paper's experiments are driven
    by — the number of SQL queries sent to MySQL.  Every call that the
    conjunctive-query evaluator treats as "one database query" bumps it via
    {!count_probe}. *)

type t

val create : unit -> t

val create_table : t -> Schema.t -> Relation.t
(** @raise Invalid_argument if a relation with the same name exists. *)

val create_table' : t -> string -> string list -> Relation.t
(** [create_table' db name attrs] is [create_table db (Schema.make name attrs)]. *)

val drop_table : t -> string -> unit
(** Removes a relation; silently does nothing when absent. *)

val relation : t -> string -> Relation.t
(** @raise Not_found when no relation has that name. *)

val relation_opt : t -> string -> Relation.t option

val mem_relation : t -> string -> bool

val relations : t -> Relation.t list
(** All relations, sorted by name. *)

val insert : t -> string -> Value.t list -> unit
(** [insert db rel vs] inserts the tuple [vs] into relation [rel].
    @raise Not_found when [rel] does not exist.
    @raise Invalid_argument on an arity mismatch. *)

val active_domain : t -> Value.Set.t
(** Union of the active domains of all relations. *)

val total_tuples : t -> int

(** {2 Probe accounting} *)

val count_probe : t -> unit
(** Record that one conjunctive query was issued against this instance.
    If a probe latency is configured, also stalls for that long. *)

val set_probe_latency : t -> float -> unit
(** [set_probe_latency db seconds] makes every probe cost an additional
    [seconds] of wall-clock time, emulating the client–server round trip
    of the paper's MySQL/JDBC setup (where per-query latency, not join
    work, dominates).  Zero (the default) disables the stall. *)

val probe_latency : t -> float

val probes : t -> int
(** Number of probes since creation or the last {!reset_probes}. *)

val reset_probes : t -> unit

val pp : Format.formatter -> t -> unit
(** Prints every relation's schema and cardinality (not the tuples). *)
