(** Rendering conjunctive queries as SQL.

    The paper's implementation sends each combined query to MySQL as a
    single SELECT; this module produces that SELECT for any {!Cq.t}, so
    combined queries can be inspected, logged, or replayed against a
    real RDBMS.  Each atom becomes an aliased occurrence of its table in
    the FROM clause; constants become equality predicates against
    literals and repeated variables become join predicates (the
    canonical translation of conjunctive queries).

    The column names come from the relation schemas in the given
    database; rendering fails on atoms whose relation or arity does not
    match the schema. *)

exception Cannot_render of string

val select : ?distinct:bool -> Database.t -> Cq.t -> string list -> string
(** [select db q vars] is a SQL SELECT returning the given variables (in
    order).  [distinct] adds DISTINCT.  The empty query renders as
    [SELECT 1].
    @raise Cannot_render on an unknown relation, an arity mismatch, a
    projection variable not occurring in the query, or an empty
    projection over a non-empty query (use {!exists} instead). *)

val exists : Database.t -> Cq.t -> string
(** A satisfiability probe: [SELECT 1 ... LIMIT 1] — the choose-1 probe
    of the paper. *)

val literal : Value.t -> string
(** SQL literal syntax: integers bare, strings single-quoted with
    quote-doubling, booleans as TRUE/FALSE. *)
