(** Relation schemas.

    A schema names a relation and its attributes, in order.  Attribute
    names are unique within a schema.  Arity is the number of attributes. *)

type t

val make : string -> string list -> t
(** [make name attrs] builds a schema.
    @raise Invalid_argument if [attrs] contains duplicates or is empty,
    or if [name] is empty. *)

val name : t -> string

val arity : t -> int

val attributes : t -> string array
(** The attribute names in declaration order.  The returned array is a
    fresh copy; mutating it does not affect the schema. *)

val attribute : t -> int -> string
(** [attribute s i] is the name of the [i]-th attribute.
    @raise Invalid_argument on an out-of-bounds index. *)

val index_of : t -> string -> int
(** [index_of s a] is the position of attribute [a].
    @raise Not_found if [a] is not an attribute of [s]. *)

val mem_attribute : t -> string -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [Name(attr1, attr2, ...)]. *)
