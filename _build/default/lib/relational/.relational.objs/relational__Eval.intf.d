lib/relational/eval.mli: Cq Database Format Map Tuple Value
