lib/relational/sqlgen.mli: Cq Database Value
