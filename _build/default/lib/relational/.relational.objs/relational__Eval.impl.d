lib/relational/eval.ml: Array Cq Database Format Hashtbl List Map Option Printf Relation String Term Tuple Value
