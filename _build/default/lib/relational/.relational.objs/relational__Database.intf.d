lib/relational/database.mli: Format Relation Schema Value
