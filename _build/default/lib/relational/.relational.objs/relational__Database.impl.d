lib/relational/database.ml: Format Hashtbl List Printf Relation Schema String Sys Tuple Value
