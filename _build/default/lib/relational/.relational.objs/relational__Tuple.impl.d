lib/relational/tuple.ml: Array Format Int List Printf Set Stdlib String Value
