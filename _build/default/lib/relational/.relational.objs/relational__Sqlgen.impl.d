lib/relational/sqlgen.ml: Array Buffer Cq Database Hashtbl List Option Printf Relation Schema String Term Value
