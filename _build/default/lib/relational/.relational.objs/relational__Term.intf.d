lib/relational/term.mli: Format Map Set Value
