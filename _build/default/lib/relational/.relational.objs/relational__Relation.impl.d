lib/relational/relation.ml: Array Format List Option Printf Schema Tuple Value Vec
