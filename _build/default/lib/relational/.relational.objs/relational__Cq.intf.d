lib/relational/cq.mli: Format Term
