lib/relational/containment.ml: Array Cq Hashtbl List Option Term Value
