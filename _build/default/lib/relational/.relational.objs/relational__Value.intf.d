lib/relational/value.mli: Format Hashtbl Map Set
