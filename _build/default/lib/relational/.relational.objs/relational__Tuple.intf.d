lib/relational/tuple.mli: Format Hashtbl Set Value
