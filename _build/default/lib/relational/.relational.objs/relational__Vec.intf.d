lib/relational/vec.mli:
