lib/relational/value.ml: Bool Format Int Map Set Stdlib String
