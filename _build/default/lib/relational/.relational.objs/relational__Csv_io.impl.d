lib/relational/csv_io.ml: Array Buffer Database List Printf Relation Schema String Tuple Value
