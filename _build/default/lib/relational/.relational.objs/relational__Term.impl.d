lib/relational/term.ml: Format Map Set String Value
