lib/relational/cq.ml: Array Format Hashtbl Int List Option String Term
