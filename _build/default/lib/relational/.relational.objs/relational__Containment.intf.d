lib/relational/containment.mli: Cq Term
