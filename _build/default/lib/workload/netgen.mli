(** The scale-free workload of Figures 5 and 6.

    Each query corresponds to a node of a Barabási–Albert digraph; its
    coordination partners are its successors, as in Section 6.1.  The
    set is safe (each postcondition names one specific user) and not
    unique. *)

open Relational
open Entangled

val queries_of_graph : ?topics:int -> Prng.t -> Graphs.Digraph.t -> Query.t list
(** Query [i]: [{R(u<j>, y<j>) : j successor of i} R(u<i>, x) :-
    Posts(x, t)]. *)

val make :
  ?rows:int ->
  ?topics:int ->
  ?edges_per_node:int ->
  seed:int ->
  int ->
  Database.t * Query.t list * Graphs.Digraph.t
