(** Meeting scheduling — the introduction's "professionals scheduling
    joint meetings".

    A [Slots(slotId, day, hour, room)] table lists bookable meeting
    slots; professionals coordinate on the day and hour (the room is
    personal — video links exist).  A {e committee} is a group whose
    members must all meet: each member names every other member as a
    coordination partner, so the committee forms a clique in the
    coordination graph.  When committees share a member, their cliques
    connect and the whole component must settle on one (day, hour). *)

open Relational

val slots_schema : Schema.t

val config : Coordination.Consistent_query.config
(** Coordination on (day, hour); friends relation ["Colleagues"]
    (used only by queries with pool partners, not by committees). *)

val install_slots :
  Database.t -> days:int -> hours:int -> rooms:int -> Relation.t
(** One slot per (day, hour, room) combination: day ["d<i>"], hour
    ["h<j>"], room ["r<k>"], sequential ids. *)

val committee_queries :
  ?pins:(Value.t * int) list ->
  Value.t list list ->
  Coordination.Consistent_query.t list
(** [committee_queries committees] builds one query per distinct member;
    a member of several committees names the union of her colleagues.
    [pins] optionally fixes a member's required day (by index) — the
    "the chair is only free on Thursday" constraint.
    @raise Invalid_argument on a committee with fewer than 2 members. *)
