lib/workload/movies.mli: Coordination Database Relational Schema Value
