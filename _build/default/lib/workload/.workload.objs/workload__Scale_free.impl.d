lib/workload/scale_free.ml: Array Graphs Hashtbl Int List Option Prng
