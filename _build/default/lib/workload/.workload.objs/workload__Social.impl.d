lib/workload/social.ml: Database Printf Relation Relational Schema Value
