lib/workload/movies.ml: Coordination Database List Relation Relational Schema Value
