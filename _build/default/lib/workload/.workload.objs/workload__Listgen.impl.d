lib/workload/listgen.ml: Cq Database Entangled List Printf Prng Query Relational Social Term Value
