lib/workload/listgen.mli: Database Entangled Prng Query Relational Value
