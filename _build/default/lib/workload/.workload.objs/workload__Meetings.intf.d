lib/workload/meetings.mli: Coordination Database Relation Relational Schema Value
