lib/workload/flights.ml: Coordination Database List Printf Prng Relation Relational Schema Value
