lib/workload/social.mli: Relational
