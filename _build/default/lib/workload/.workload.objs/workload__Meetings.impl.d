lib/workload/meetings.ml: Coordination Database List Option Printf Relation Relational Schema Value
