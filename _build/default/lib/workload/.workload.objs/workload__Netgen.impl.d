lib/workload/netgen.ml: Cq Database Entangled Graphs List Listgen Printf Prng Query Relational Scale_free Social Term Value
