lib/workload/flights.mli: Coordination Database Prng Relation Relational Schema Value
