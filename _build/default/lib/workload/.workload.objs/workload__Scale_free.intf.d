lib/workload/scale_free.mli: Graphs Prng
