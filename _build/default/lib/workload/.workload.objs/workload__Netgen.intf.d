lib/workload/netgen.mli: Database Entangled Graphs Prng Query Relational
