open Relational
module Cquery = Coordination.Consistent_query

let slots_schema = Schema.make "Slots" [ "slotId"; "day"; "hour"; "room" ]

let config =
  Cquery.make_config ~s_schema:slots_schema ~friends:"Colleagues" ~answer:"R"
    ~coord_attrs:[ 0; 1 ] (* day, hour *)

let install_slots db ~days ~hours ~rooms =
  let r = Database.create_table db slots_schema in
  let id = ref 0 in
  for d = 0 to days - 1 do
    for h = 0 to hours - 1 do
      for k = 0 to rooms - 1 do
        ignore
          (Relation.insert r
             [|
               Value.Int !id;
               Value.Str (Printf.sprintf "d%d" d);
               Value.Str (Printf.sprintf "h%d" h);
               Value.Str (Printf.sprintf "r%d" k);
             |]);
        incr id
      done
    done
  done;
  r

let committee_queries ?(pins = []) committees =
  List.iter
    (fun c ->
      if List.length c < 2 then
        invalid_arg "Meetings.committee_queries: committee needs >= 2 members")
    committees;
  (* member -> union of colleagues across all her committees *)
  let colleagues : Value.Set.t Value.Map.t ref = ref Value.Map.empty in
  List.iter
    (fun committee ->
      List.iter
        (fun m ->
          let others =
            List.filter (fun o -> not (Value.equal o m)) committee
          in
          let prev =
            Option.value ~default:Value.Set.empty
              (Value.Map.find_opt m !colleagues)
          in
          colleagues :=
            Value.Map.add m
              (List.fold_left (fun s o -> Value.Set.add o s) prev others)
              !colleagues)
        committee)
    committees;
  Value.Map.fold
    (fun member others acc ->
      let day =
        match List.assoc_opt member pins with
        | Some d -> Cquery.Exact (Value.Str (Printf.sprintf "d%d" d))
        | None -> Cquery.Any
      in
      let partners =
        List.map (fun o -> Cquery.Named o) (Value.Set.elements others)
      in
      Cquery.make config ~user:member
        ~own:[ day; Cquery.Any; Cquery.Any ]
        ~partners
      :: acc)
    !colleagues []
  |> List.rev
