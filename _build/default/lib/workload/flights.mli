(** The flight-coordination workload of Figures 7 and 8.

    Schema [Flights(fid, dest, day, src, airline)]: coordination
    attributes are destination and day; source and airline are personal.
    The paper's worst case: every (dest, day) combination in the table is
    unique (so the option list is as long as the table), the friendship
    graph is complete, and every query is satisfied by every tuple. *)

open Relational

val flights_schema : Schema.t

val config : Coordination.Consistent_query.config
(** Coordination on dest and day, friendship relation ["Friends"],
    answer relation ["R"]. *)

val install_flights : Database.t -> rows:int -> Relation.t
(** [rows] tuples, each with a distinct (dest, day) pair: destination
    ["D<i>"], day ["Y<i>"], source ["S<i mod 10>"], airline
    ["A<i mod 5>"]. *)

val install_complete_friends : Database.t -> users:int -> Relation.t
(** [Friends(user, friend)] holding every ordered pair of distinct users
    ["p0" .. "p<users-1>"]. *)

val user : int -> Value.t

val worst_case_queries : users:int -> Coordination.Consistent_query.t list
(** One query per user, all attributes "don't care", one any-friend
    partner — the paper's stress-test shape. *)

val make_worst_case :
  rows:int -> users:int -> Database.t * Coordination.Consistent_query.t list
(** Figures 7 and 8 instance. *)

val cascade_queries : users:int -> Coordination.Consistent_query.t list
(** A Named-partner chain (user i needs user i+1) whose last user pins
    destination ["D0"]: for every other value the cleaning phase
    cascades one removal per round, making the value loop the dominant
    cost — the adversarial case for cleaning, used by the parallel
    ablation. *)

val constrained_queries :
  Prng.t ->
  users:int ->
  rows:int ->
  constrain_fraction:float ->
  Coordination.Consistent_query.t list
(** A more realistic mix: each user pins the destination of an existing
    row with probability [constrain_fraction] (and similarly a source),
    still with one any-friend partner.  Used by the realistic-scenario
    bench and tests. *)
