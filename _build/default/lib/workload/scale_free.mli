(** Scale-free directed networks (Barabási–Albert preferential
    attachment), the coordination-structure model of the paper's second
    and third experiments (citing [1] = Barabási & Albert 1999). *)

val generate : Prng.t -> nodes:int -> edges_per_node:int -> Graphs.Digraph.t
(** [generate rng ~nodes ~edges_per_node] grows a graph node by node;
    each new node draws [edges_per_node] distinct targets among existing
    nodes with probability proportional to (in-degree + 1), and points an
    edge at each.  The first node has no edges.
    @raise Invalid_argument when [nodes < 1] or [edges_per_node < 1]. *)

val in_degree_histogram : Graphs.Digraph.t -> (int * int) list
(** [(degree, count)] pairs, ascending degree — lets tests check the
    heavy-tailed shape. *)
