(** Synthetic substitute for the paper's Slashdot social-network table.

    The paper loads an 82168-row table and writes query bodies that are
    simple and guaranteed satisfiable.  We generate a [Posts(pid, topic)]
    table of the same size: row ids are sequential, topics cycle through
    a fixed pool so every topic is guaranteed to exist — matching "for
    each body there is at least one tuple satisfying it". *)

val slashdot_row_count : int
(** 82168, the size reported in Section 6.1. *)

val posts_schema : Relational.Schema.t
(** [Posts(pid, topic)]. *)

val install_posts :
  ?rows:int -> ?topics:int -> Relational.Database.t -> Relational.Relation.t
(** Creates and fills the table ([rows] defaults to
    {!slashdot_row_count}, [topics] to 100).  Topic [t] of row [r] is
    ["t<r mod topics>"]. *)

val topic : int -> string
(** The topic constant for index [i] (callers pick [i < topics]). *)
