lib/coordination/parallel.ml: Consistent Database Domain Int64 List Option Relational Stats
