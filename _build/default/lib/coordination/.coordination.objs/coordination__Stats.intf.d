lib/coordination/stats.mli: Format
