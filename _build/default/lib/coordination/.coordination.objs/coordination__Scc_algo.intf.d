lib/coordination/scc_algo.mli: Combine Coordination_graph Database Entangled Eval Query Relational Solution Stats
