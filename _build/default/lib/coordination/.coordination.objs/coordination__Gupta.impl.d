lib/coordination/gupta.ml: Array Combine Coordination_graph Database Entangled Format Fun Ground Int64 List Query Relational Safety Solution Stats
