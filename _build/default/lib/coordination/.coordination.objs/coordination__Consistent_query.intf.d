lib/coordination/consistent_query.mli: Entangled Format Query Relational Schema Value
