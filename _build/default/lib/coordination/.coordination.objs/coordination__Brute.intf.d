lib/coordination/brute.mli: Coordination_graph Database Entangled Eval Query Relational Solution
