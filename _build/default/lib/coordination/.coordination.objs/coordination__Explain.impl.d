lib/coordination/explain.ml: Array Combine Entangled Format List Query Relational Scc_algo Solution Sqlgen Stats String
