lib/coordination/online.ml: Array Coordination_graph Cq Database Entangled Eval Graphs Hashtbl Int Int64 List Query Relation Relational Scc_algo Solution Stats Term
