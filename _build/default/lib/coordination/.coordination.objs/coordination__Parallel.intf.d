lib/coordination/parallel.mli: Consistent Consistent_query Database Relational
