lib/coordination/stats.ml: Format Int64 Printf Unix
