lib/coordination/single_connected.ml: Array Coordination_graph Database Entangled Eval Format Graphs Ground Int Int64 List Option Query Relational Solution Stats Subst
