lib/coordination/scc_algo.ml: Array Combine Coordination_graph Database Entangled Eval Fun Graphs Ground Hashtbl Int Int64 List Option Query Relational Solution Stats
