lib/coordination/online.mli: Database Entangled Eval Query Relational Scc_algo Stats
