lib/coordination/brute.ml: Array Coordination_graph Cq Entangled Fun Ground Hashtbl Int List Option Printf Query Relational Solution Subst
