lib/coordination/consistent_query.ml: Array Cq Entangled Format Fun Int List Printf Query Relational Schema Term Value
