lib/coordination/consistent.ml: Array Consistent_query Cq Database Entangled Eval Format Hashtbl Int64 List Option Printf Relation Relational Schema Stats String Term Tuple Value
