lib/coordination/gupta.mli: Combine Database Entangled Format Query Relational Solution Stats
