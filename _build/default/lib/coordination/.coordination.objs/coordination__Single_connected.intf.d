lib/coordination/single_connected.mli: Coordination_graph Database Entangled Format Query Relational Solution Stats
