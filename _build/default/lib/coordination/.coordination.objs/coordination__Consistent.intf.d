lib/coordination/consistent.mli: Consistent_query Database Entangled Format Relational Stats Tuple Value
