lib/coordination/explain.mli: Database Entangled Format Query Relational Scc_algo
