(** Instrumentation shared by all solvers.

    The paper's experiments measure total processing time, the time spent
    in graph construction and preprocessing (Figure 6), and are driven by
    the number of database queries issued.  Every solver fills one of
    these records. *)

type t = {
  mutable db_probes : int;       (** conjunctive queries issued *)
  mutable graph_ns : int64;      (** graph build + preprocessing + SCC *)
  mutable unify_ns : int64;      (** unification work *)
  mutable ground_ns : int64;     (** database evaluation *)
  mutable total_ns : int64;      (** whole solver call *)
  mutable candidates : int;      (** candidate sets considered *)
  mutable cleaning_rounds : int; (** consistent algorithm cleaning passes *)
}

val create : unit -> t

val now_ns : unit -> int64
(** Monotonic-ish wall-clock timestamp in nanoseconds. *)

val add_span : t -> (t -> int64) -> (t -> int64 -> unit) -> int64 -> unit

val timed : (unit -> 'a) -> 'a * int64
(** [timed f] runs [f] and reports its wall-clock duration. *)

val pp : Format.formatter -> t -> unit

val to_row : t -> (string * string) list
(** Key/value view for the benchmark harness's tabular output. *)
