open Relational
open Entangled

type config = {
  s_schema : Schema.t;
  friends : string;
  answer : string;
  coord_attrs : int list;
}

let attr_count config = Schema.arity config.s_schema - 1

let make_config ~s_schema ~friends ~answer ~coord_attrs =
  if Schema.arity s_schema < 2 then
    invalid_arg "Consistent_query.make_config: S needs a key and >=1 attribute";
  let d = Schema.arity s_schema - 1 in
  let sorted = List.sort_uniq Int.compare coord_attrs in
  if List.length sorted <> List.length coord_attrs then
    invalid_arg "Consistent_query.make_config: duplicate coordination attribute";
  List.iter
    (fun j ->
      if j < 0 || j >= d then
        invalid_arg
          (Printf.sprintf
             "Consistent_query.make_config: attribute %d out of [0,%d)" j d))
    sorted;
  { s_schema; friends; answer; coord_attrs = sorted }

type attr_spec =
  | Exact of Value.t
  | Any

type partner_spec =
  | Same
  | Free
  | Fixed of Value.t

type partner =
  | Named of Value.t
  | Any_friend
  | Any_from of string
  | K_friends of int

type t = {
  user : Value.t;
  own : attr_spec array;
  partners : (partner * partner_spec array) list;
}

let check_own config own =
  let d = attr_count config in
  if Array.length own <> d then
    invalid_arg
      (Printf.sprintf "Consistent_query: own spec has %d entries, expected %d"
         (Array.length own) d)

let make config ~user ~own ~partners =
  let own = Array.of_list own in
  check_own config own;
  let d = attr_count config in
  let spec =
    Array.init d (fun j -> if List.mem j config.coord_attrs then Same else Free)
  in
  { user; own; partners = List.map (fun p -> (p, Array.copy spec)) partners }

let make_raw config ~user ~own ~partners =
  let own = Array.of_list own in
  check_own config own;
  let d = attr_count config in
  let partners =
    List.map
      (fun (p, spec) ->
        let spec = Array.of_list spec in
        if Array.length spec <> d then
          invalid_arg "Consistent_query.make_raw: partner spec length";
        (p, spec))
      partners
  in
  { user; own; partners }

let is_coordinating _config ~attrs q =
  List.for_all
    (fun j ->
      List.for_all
        (fun (_, spec) ->
          match spec.(j) with
          | Same -> true
          | Fixed v -> (
            match q.own.(j) with Exact v' -> Value.equal v v' | Any -> false)
          | Free -> false)
        q.partners)
    attrs

let is_non_coordinating _config ~attrs q =
  List.for_all
    (fun j -> List.for_all (fun (_, spec) -> spec.(j) = Free) q.partners)
    attrs

let is_consistent config q =
  let d = attr_count config in
  let complement =
    List.filter (fun j -> not (List.mem j config.coord_attrs)) (List.init d Fun.id)
  in
  is_coordinating config ~attrs:config.coord_attrs q
  && is_non_coordinating config ~attrs:complement q

(* Variable-name conventions used by the compiled query (and relied upon
   by Consistent.to_solution): own key "x", own attribute j "a<j>",
   partner i's key "y<i>", partner i's free attribute j "b<i>_<j>",
   partner i's friend variable "f<i>". *)
let own_attr_term q j =
  match q.own.(j) with
  | Exact v -> Term.Const v
  | Any -> Term.Var (Printf.sprintf "a%d" j)

let expressible q =
  List.for_all
    (fun (p, _) -> match p with K_friends _ -> false | Named _ | Any_friend | Any_from _ -> true)
    q.partners

let to_entangled config q =
  if not (expressible q) then
    invalid_arg
      "Consistent_query.to_entangled: k-of-friends coordination is not \
       expressible as an entangled query (Section 5, Generalizations)";
  let d = attr_count config in
  let s_name = Schema.name config.s_schema in
  let own_atom =
    {
      Cq.rel = s_name;
      args =
        Array.init (d + 1) (fun c ->
            if c = 0 then Term.Var "x" else own_attr_term q (c - 1));
    }
  in
  let posts = ref [] in
  let partner_atoms = ref [] in
  let friend_atoms = ref [] in
  List.iteri
    (fun i (p, spec) ->
      let y = Term.Var (Printf.sprintf "y%d" i) in
      let friend_var rel =
        let f = Term.Var (Printf.sprintf "f%d" i) in
        friend_atoms :=
          { Cq.rel; args = [| Term.Const q.user; f |] } :: !friend_atoms;
        f
      in
      let partner_term =
        match p with
        | Named c -> Term.Const c
        | Any_friend -> friend_var config.friends
        | Any_from rel -> friend_var rel
        | K_friends _ -> assert false (* rejected by [expressible] above *)
      in
      posts := { Cq.rel = config.answer; args = [| y; partner_term |] } :: !posts;
      let atom =
        {
          Cq.rel = s_name;
          args =
            Array.init (d + 1) (fun c ->
                if c = 0 then y
                else
                  let j = c - 1 in
                  match spec.(j) with
                  | Same -> own_attr_term q j
                  | Free -> Term.Var (Printf.sprintf "b%d_%d" i j)
                  | Fixed v -> Term.Const v);
        }
      in
      partner_atoms := atom :: !partner_atoms)
    q.partners;
  let head =
    [ { Cq.rel = config.answer; args = [| Term.Var "x"; Term.Const q.user |] } ]
  in
  let body =
    (own_atom :: List.rev !friend_atoms) @ List.rev !partner_atoms
  in
  Query.make
    ~name:("u_" ^ Value.to_string q.user)
    ~post:(List.rev !posts) ~head body

let compile_set config qs =
  Query.rename_set (List.map (to_entangled config) qs)

let pp config ppf q =
  Format.fprintf ppf "@[<v>user %a over %s:" Value.pp q.user
    (Schema.name config.s_schema);
  Array.iteri
    (fun j spec ->
      let attr = Schema.attribute config.s_schema (j + 1) in
      match spec with
      | Exact v -> Format.fprintf ppf "@,  %s = %a" attr Value.pp v
      | Any -> Format.fprintf ppf "@,  %s = *" attr)
    q.own;
  List.iter
    (fun (p, _) ->
      match p with
      | Named c -> Format.fprintf ppf "@,  with user %a" Value.pp c
      | Any_friend -> Format.fprintf ppf "@,  with any friend"
      | Any_from rel -> Format.fprintf ppf "@,  with anyone from %s" rel
      | K_friends k -> Format.fprintf ppf "@,  with at least %d friends" k)
    q.partners;
  Format.fprintf ppf "@]"
