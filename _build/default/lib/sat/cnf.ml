type literal = {
  var : int;
  positive : bool;
}

type clause = literal list

type t = {
  num_vars : int;
  clauses : clause list;
}

let lit v =
  if v = 0 then invalid_arg "Cnf.lit: zero literal";
  if v > 0 then { var = v; positive = true }
  else { var = -v; positive = false }

let neg l = { l with positive = not l.positive }

let make ~num_vars clauses =
  let convert c =
    List.map
      (fun v ->
        let l = lit v in
        if l.var > num_vars then
          invalid_arg
            (Printf.sprintf "Cnf.make: variable %d > num_vars %d" l.var num_vars);
        l)
      c
  in
  { num_vars; clauses = List.map convert clauses }

type assignment = bool array

let eval_literal l (a : assignment) = if l.positive then a.(l.var) else not a.(l.var)

let eval_clause c a = List.exists (fun l -> eval_literal l a) c

let eval f a = List.for_all (fun c -> eval_clause c a) f.clauses

let clause_count f = List.length f.clauses

let is_three_cnf f =
  List.for_all
    (fun c ->
      List.length c = 3
      && List.length (List.sort_uniq Int.compare (List.map (fun l -> l.var) c)) = 3)
    f.clauses

let pp_literal ppf l =
  Format.fprintf ppf "%sx%d" (if l.positive then "" else "!") l.var

let pp ppf f =
  if f.clauses = [] then Format.pp_print_string ppf "true"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
      (fun ppf c ->
        Format.fprintf ppf "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
             pp_literal)
          c)
      ppf f.clauses
