(* Clause state during search: literals are checked against a partial
   assignment; Unknown variables are 0. *)
type partial = int array (* 0 = unassigned, 1 = true, -1 = false *)

let literal_status (p : partial) (l : Cnf.literal) =
  match p.(l.var) with
  | 0 -> `Unassigned
  | 1 -> if l.positive then `True else `False
  | _ -> if l.positive then `False else `True

(* Returns [`Sat] when the clause is already satisfied, [`Conflict] when
   all literals are false, [`Unit l] when a single literal remains, and
   [`Open] otherwise. *)
let clause_status p clause =
  let rec loop unassigned = function
    | [] -> (
      match unassigned with
      | [] -> `Conflict
      | [ l ] -> `Unit l
      | _ -> `Open)
    | l :: rest -> (
      match literal_status p l with
      | `True -> `Sat
      | `False -> loop unassigned rest
      | `Unassigned -> loop (l :: unassigned) rest)
  in
  loop [] clause

exception Conflict

(* Unit propagation to fixpoint; raises [Conflict] on an empty clause.
   Returns the list of variables assigned (for undo). *)
let propagate (f : Cnf.t) (p : partial) =
  let trail = ref [] in
  let assign (l : Cnf.literal) =
    p.(l.var) <- (if l.positive then 1 else -1);
    trail := l.var :: !trail
  in
  let changed = ref true in
  (try
     while !changed do
       changed := false;
       List.iter
         (fun clause ->
           match clause_status p clause with
           | `Conflict -> raise Conflict
           | `Unit l ->
             assign l;
             changed := true
           | `Sat | `Open -> ())
         f.clauses
     done
   with Conflict ->
     List.iter (fun v -> p.(v) <- 0) !trail;
     raise Conflict);
  !trail

let pure_literals (f : Cnf.t) (p : partial) =
  let polarity = Array.make (f.num_vars + 1) 0 in
  (* 0 unseen, 1 positive only, -1 negative only, 2 mixed *)
  List.iter
    (fun clause ->
      if clause_status p clause <> `Sat then
        List.iter
          (fun (l : Cnf.literal) ->
            if p.(l.var) = 0 then
              let pol = if l.positive then 1 else -1 in
              match polarity.(l.var) with
              | 0 -> polarity.(l.var) <- pol
              | x when x = pol -> ()
              | _ -> polarity.(l.var) <- 2)
          clause)
    f.clauses;
  let pures = ref [] in
  Array.iteri
    (fun v pol -> if v > 0 && (pol = 1 || pol = -1) then pures := (v, pol) :: !pures)
    polarity;
  !pures

let solve (f : Cnf.t) =
  let p = Array.make (f.num_vars + 1) 0 in
  let rec search () =
    let trail =
      try propagate f p with Conflict -> raise Exit
    in
    let undo () = List.iter (fun v -> p.(v) <- 0) trail in
    (* Pure-literal elimination. *)
    let pures = pure_literals f p in
    let pure_trail =
      List.filter_map
        (fun (v, pol) ->
          if p.(v) = 0 then begin
            p.(v) <- pol;
            Some v
          end
          else None)
        pures
    in
    let undo_all () =
      List.iter (fun v -> p.(v) <- 0) pure_trail;
      undo ()
    in
    let all_sat =
      List.for_all (fun c -> clause_status p c = `Sat) f.clauses
    in
    if all_sat then true
    else begin
      let branch_var =
        let rec find v = if v > f.num_vars then None else if p.(v) = 0 then Some v else find (v + 1) in
        find 1
      in
      match branch_var with
      | None ->
        (* Everything assigned but some clause unsatisfied. *)
        undo_all ();
        raise Exit
      | Some v ->
        let try_value value =
          p.(v) <- value;
          let ok = try search () with Exit -> false in
          if not ok then p.(v) <- 0;
          ok
        in
        if try_value 1 || try_value (-1) then true
        else begin
          undo_all ();
          raise Exit
        end
    end
  in
  match (try search () with Exit -> false) with
  | false -> None
  | true ->
    Some (Array.init (f.num_vars + 1) (fun v -> v > 0 && p.(v) = 1))

let satisfiable f = Option.is_some (solve f)

let count_models (f : Cnf.t) =
  if f.num_vars > 20 then invalid_arg "Dpll.count_models: too many variables";
  let count = ref 0 in
  let a = Array.make (f.num_vars + 1) false in
  let rec go v =
    if v > f.num_vars then begin
      if Cnf.eval f a then incr count
    end
    else begin
      a.(v) <- false;
      go (v + 1);
      a.(v) <- true;
      go (v + 1)
    end
  in
  go 1;
  !count
