lib/sat/gen.ml: Array Cnf List Printf Prng
