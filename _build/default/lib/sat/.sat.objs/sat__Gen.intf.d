lib/sat/gen.mli: Cnf Prng
