lib/sat/reduce.ml: Array Cnf Cq Database Entangled Fun List Printf Query Relational String Term Value
