lib/sat/reduce.mli: Cnf Database Entangled Query Relational
