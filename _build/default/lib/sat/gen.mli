(** Random k-SAT instance generation (deterministic, seeded). *)

val random_3sat : Prng.t -> num_vars:int -> num_clauses:int -> Cnf.t
(** Each clause draws three distinct variables uniformly and flips a fair
    coin per polarity.
    @raise Invalid_argument when [num_vars < 3]. *)

val random_ksat : Prng.t -> k:int -> num_vars:int -> num_clauses:int -> Cnf.t

val planted_3sat : Prng.t -> num_vars:int -> num_clauses:int -> Cnf.t * Cnf.assignment
(** Like {!random_3sat} but each clause is re-polarised to be satisfied
    by a hidden planted assignment, so the instance is guaranteed
    satisfiable; the planted assignment is returned. *)
