(** Propositional formulas in conjunctive normal form. *)

type literal = {
  var : int;        (** 1-based variable index *)
  positive : bool;
}

type clause = literal list

type t = {
  num_vars : int;
  clauses : clause list;
}

val lit : int -> literal
(** [lit v] for [v > 0] is the positive literal of variable [v]; for
    [v < 0] the negative literal of [-v].  @raise Invalid_argument on 0. *)

val neg : literal -> literal

val make : num_vars:int -> int list list -> t
(** Clauses in DIMACS style: nonzero integers, sign is polarity.
    @raise Invalid_argument when a literal mentions a variable outside
    [1..num_vars]. *)

type assignment = bool array
(** Index 0 unused; [a.(v)] is the truth value of variable [v]. *)

val eval_clause : clause -> assignment -> bool

val eval : t -> assignment -> bool

val clause_count : t -> int

val is_three_cnf : t -> bool
(** Every clause has exactly three literals over three distinct
    variables — the shape the reductions expect. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(x1 | !x2 | x3) & ...]. *)
