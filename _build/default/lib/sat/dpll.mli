(** A DPLL satisfiability solver: unit propagation, pure-literal
    elimination, first-unassigned-variable branching.

    Used as independent ground truth when testing the paper's hardness
    reductions (Theorems 1 and 2, Appendix B): formula satisfiability
    must coincide with coordinating-set existence on the reduced
    instance. *)

val solve : Cnf.t -> Cnf.assignment option
(** A satisfying assignment (index 0 unused), or [None] when
    unsatisfiable.  Variables not forced either way come back [false]. *)

val satisfiable : Cnf.t -> bool

val count_models : Cnf.t -> int
(** Number of satisfying assignments over all [num_vars] variables —
    exhaustive, for tiny formulas in tests.
    @raise Invalid_argument when [num_vars > 20]. *)
