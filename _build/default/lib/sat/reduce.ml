open Relational
open Entangled

type instance = {
  db : Database.t;
  queries : Query.t array;
}

let atom rel args = { Cq.rel; args = Array.of_list args }

let cint n = Term.Const (Value.Int n)
let cstr s = Term.Const (Value.Str s)

let clause_rel j = Printf.sprintf "C%d" j
let var_rel i = Printf.sprintf "R%d" i

(* Database with the unary relation D = {0, 1}: every conjunctive query
   over it is trivially decidable, which is the point of Theorem 1. *)
let boolean_db () =
  let db = Database.create () in
  ignore (Database.create_table' db "D" [ "v" ]);
  Database.insert db "D" [ Value.Int 0 ];
  Database.insert db "D" [ Value.Int 1 ];
  db

let clauses_numbered (f : Cnf.t) = List.mapi (fun j c -> (j + 1, c)) f.clauses

(* Clauses containing variable [i] with the given polarity. *)
let occurrences f i ~positive =
  List.filter_map
    (fun (j, c) ->
      if
        List.exists
          (fun (l : Cnf.literal) -> l.var = i && l.positive = positive)
          c
      then Some j
      else None)
    (clauses_numbered f)

let to_entangled (f : Cnf.t) =
  let db = boolean_db () in
  let k_clauses = clauses_numbered f in
  let clause_query =
    Query.make ~name:"clause_query"
      ~post:(List.map (fun (j, _) -> atom (clause_rel j) [ cint 1 ]) k_clauses)
      ~head:[ atom "C" [ cint 1 ] ]
      []
  in
  let val_query i =
    Query.make
      ~name:(Printf.sprintf "val_%d" i)
      ~post:[ atom "C" [ cint 1 ] ]
      ~head:[ atom (var_rel i) [ Term.Var "x" ] ]
      [ atom "D" [ Term.Var "x" ] ]
  in
  let literal_query i ~positive =
    let name = if positive then "true_" else "false_" in
    let heads =
      List.map
        (fun j -> atom (clause_rel j) [ cint 1 ])
        (occurrences f i ~positive)
    in
    if heads = [] then None
    else
      Some
        (Query.make
           ~name:(Printf.sprintf "%s%d" name i)
           ~post:[ atom (var_rel i) [ cint (if positive then 1 else 0) ] ]
           ~head:heads [])
  in
  let literal_queries =
    List.concat_map
      (fun i ->
        List.filter_map Fun.id
          [ literal_query i ~positive:true; literal_query i ~positive:false ])
      (List.init f.num_vars (fun i -> i + 1))
  in
  let queries =
    Query.rename_set
      ((clause_query :: List.map val_query (List.init f.num_vars (fun i -> i + 1)))
      @ literal_queries)
  in
  { db; queries }

let member_names (queries : Query.t array) members =
  List.map (fun i -> queries.(i).Query.name) members

let decode_by_names (f : Cnf.t) names =
  let a = Array.make (f.num_vars + 1) false in
  List.iter
    (fun name ->
      match String.index_opt name '_' with
      | Some pos when String.sub name 0 pos = "true" || String.sub name 0 pos = "pos" ->
        let i = int_of_string (String.sub name (pos + 1) (String.length name - pos - 1)) in
        if i >= 1 && i <= f.num_vars then a.(i) <- true
      | Some _ | None -> ())
    names;
  a

let decode_entangled f (inst : instance) members =
  decode_by_names f (member_names inst.queries members)

(* ------------------------------------------------------------------ *)
(* Theorem 2                                                          *)
(* ------------------------------------------------------------------ *)

type max_instance = {
  mdb : Database.t;
  mqueries : Query.t array;
  target : int;
}

let to_entangled_max (f : Cnf.t) =
  if not (Cnf.is_three_cnf f) then
    invalid_arg "Reduce.to_entangled_max: formula must be exact-3SAT";
  let db = boolean_db () in
  let val_query j =
    Query.make
      ~name:(Printf.sprintf "val_%d" j)
      ~post:[]
      ~head:[ atom (var_rel j) [ Term.Var "x" ] ]
      [ atom "D" [ Term.Var "x" ] ]
  in
  (* For clause i = l1 v l2 v l3, query t is satisfied exactly when
     literal t is the first satisfied literal of the clause. *)
  let clause_queries (i, lits) =
    let bit (l : Cnf.literal) = if l.positive then 1 else 0 in
    List.mapi
      (fun t _ ->
        let this = List.nth lits t in
        let earlier = List.filteri (fun t' _ -> t' < t) lits in
        let posts =
          atom (var_rel this.Cnf.var) [ cint (bit this) ]
          :: List.map
               (fun (l : Cnf.literal) ->
                 atom (var_rel l.var) [ cint (1 - bit l) ])
               (List.rev earlier)
        in
        Query.make
          ~name:(Printf.sprintf "c%d_%d" i (t + 1))
          ~post:posts
          ~head:[ atom (clause_rel i) [ cint 1 ] ]
          [])
      lits
  in
  let queries =
    Query.rename_set
      (List.map val_query (List.init f.num_vars (fun j -> j + 1))
      @ List.concat_map clause_queries (clauses_numbered f))
  in
  { mdb = db; mqueries = queries; target = Cnf.clause_count f + f.num_vars }

let decode_entangled_max (f : Cnf.t) (inst : max_instance) members =
  (* A member c<i>_<t> pins the polarities of literal t and all earlier
     literals of clause i.  Unchosen variables default to false. *)
  let a = Array.make (f.num_vars + 1) false in
  let numbered = clauses_numbered f in
  List.iter
    (fun m ->
      let name = inst.mqueries.(m).Query.name in
      match String.length name > 0 && name.[0] = 'c' with
      | false -> ()
      | true -> (
        match String.split_on_char '_' (String.sub name 1 (String.length name - 1)) with
        | [ si; st ] -> (
          match (int_of_string_opt si, int_of_string_opt st) with
          | Some i, Some t -> (
            match List.assoc_opt i numbered with
            | None -> ()
            | Some lits ->
              List.iteri
                (fun t' (l : Cnf.literal) ->
                  if t' < t then
                    (* literal t (1-based) true, earlier ones false *)
                    let truth = if t' = t - 1 then l.positive else not l.positive in
                    a.(l.var) <- truth)
                lits)
          | _ -> ())
        | _ -> ()))
    members;
  a

let max_coordinating_size (f : Cnf.t) =
  if f.num_vars > 20 then
    invalid_arg "Reduce.max_coordinating_size: too many variables";
  let a = Array.make (f.num_vars + 1) false in
  let best = ref 0 in
  let satisfied_clauses () =
    List.length (List.filter (fun c -> Cnf.eval_clause c a) f.clauses)
  in
  let rec go v =
    if v > f.num_vars then best := max !best (satisfied_clauses ())
    else begin
      a.(v) <- false;
      go (v + 1);
      a.(v) <- true;
      go (v + 1)
    end
  in
  go 1;
  f.num_vars + !best

(* ------------------------------------------------------------------ *)
(* Appendix B                                                         *)
(* ------------------------------------------------------------------ *)

let lit_user (l : Cnf.literal) =
  if l.positive then Printf.sprintf "X%d" l.var else Printf.sprintf "Xs%d" l.var

let to_mixed_consistent (f : Cnf.t) =
  let db = Database.create () in
  ignore (Database.create_table' db "Fl" [ "fid"; "date" ]);
  Database.insert db "Fl" [ Value.Int 1; Value.Str "1MAR" ];
  Database.insert db "Fl" [ Value.Int 2; Value.Str "2MAR" ];
  ignore (Database.create_table' db "Fr" [ "user"; "friend" ]);
  let numbered = clauses_numbered f in
  List.iter
    (fun (j, lits) ->
      List.iter
        (fun l ->
          Database.insert db "Fr"
            [ Value.Str (clause_rel j); Value.Str (lit_user l) ])
        lits)
    numbered;
  let fl x d = atom "Fl" [ x; d ] in
  let q_c =
    let ys = List.map (fun (j, _) -> (j, Term.Var (Printf.sprintf "y%d" j))) numbered in
    Query.make ~name:"qC"
      ~post:(List.map (fun (j, y) -> atom "R" [ y; cstr (clause_rel j) ]) ys)
      ~head:[ atom "R" [ Term.Var "x"; cstr "C" ] ]
      (fl (Term.Var "x") (cstr "1MAR")
      :: List.map (fun (_, y) -> fl y (cstr "1MAR")) ys)
  in
  let q_clause (j, _) =
    Query.make
      ~name:(Printf.sprintf "clause_%d" j)
      ~post:[ atom "R" [ Term.Var "y"; Term.Var "f" ] ]
      ~head:[ atom "R" [ Term.Var "x"; cstr (clause_rel j) ] ]
      [
        atom "Fr" [ cstr (clause_rel j); Term.Var "f" ];
        fl (Term.Var "x") (cstr "1MAR");
        fl (Term.Var "y") (Term.Var "d");
      ]
  in
  let q_literal i ~positive =
    let date = if positive then "1MAR" else "2MAR" in
    let name = if positive then "pos_" else "neg_" in
    Query.make
      ~name:(Printf.sprintf "%s%d" name i)
      ~post:[ atom "R" [ Term.Var "y"; cstr (Printf.sprintf "S%d" i) ] ]
      ~head:
        [ atom "R" [ Term.Var "x"; cstr (lit_user { Cnf.var = i; positive }) ] ]
      [ fl (Term.Var "x") (cstr date); fl (Term.Var "y") (cstr date) ]
  in
  let q_selector i =
    Query.make
      ~name:(Printf.sprintf "sel_%d" i)
      ~post:[ atom "R" [ Term.Var "y"; cstr "C" ] ]
      ~head:[ atom "R" [ Term.Var "x"; cstr (Printf.sprintf "S%d" i) ] ]
      [ fl (Term.Var "x") (Term.Var "d"); fl (Term.Var "y") (Term.Var "d2") ]
  in
  let vars = List.init f.num_vars (fun i -> i + 1) in
  let queries =
    Query.rename_set
      ((q_c :: List.map q_clause numbered)
      @ List.concat_map
          (fun i ->
            [ q_literal i ~positive:true; q_literal i ~positive:false; q_selector i ])
          vars)
  in
  { db; queries }

let decode_mixed f (inst : instance) members =
  decode_by_names f (member_names inst.queries members)
