let random_clause rng ~k ~num_vars =
  let vars = Prng.sample_distinct rng k num_vars in
  List.map (fun v0 -> if Prng.bool rng then v0 + 1 else -(v0 + 1)) vars

let random_ksat rng ~k ~num_vars ~num_clauses =
  if num_vars < k then
    invalid_arg (Printf.sprintf "Gen.random_ksat: need >= %d variables" k);
  Cnf.make ~num_vars
    (List.init num_clauses (fun _ -> random_clause rng ~k ~num_vars))

let random_3sat rng ~num_vars ~num_clauses =
  random_ksat rng ~k:3 ~num_vars ~num_clauses

let planted_3sat rng ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Gen.planted_3sat: need >= 3 variables";
  let planted = Array.init (num_vars + 1) (fun v -> v > 0 && Prng.bool rng) in
  let clause () =
    let vars = Prng.sample_distinct rng 3 num_vars in
    let lits =
      List.map (fun v0 -> if Prng.bool rng then v0 + 1 else -(v0 + 1)) vars
    in
    let satisfied =
      List.exists
        (fun l -> if l > 0 then planted.(l) else not planted.(-l))
        lits
    in
    if satisfied then lits
    else
      (* Flip one literal so the planted assignment satisfies it. *)
      match lits with
      | l :: rest -> -l :: rest
      | [] -> assert false
  in
  let f = Cnf.make ~num_vars (List.init num_clauses (fun _ -> clause ())) in
  (f, planted)
