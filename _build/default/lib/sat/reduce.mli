(** The paper's hardness reductions, as executable instance generators.

    Each reduction turns a 3SAT formula into an entangled-query instance
    whose database is trivial (a unary relation over [{0,1}], or two
    flights), exactly as in Section 3 and Appendices A and B.  Decoders
    map a coordinating set back to a truth assignment, so tests can close
    the loop against the {!Dpll} solver. *)

open Relational
open Entangled

(** {2 Theorem 1: 3SAT <= Entangled(Qall)} *)

type instance = {
  db : Database.t;
  queries : Query.t array;   (** renamed apart, ready for the solvers *)
}

val to_entangled : Cnf.t -> instance
(** The Clause-Query / x-Val / x-True / x-False construction.  Literal
    queries whose head would be empty (a variable with no occurrence of
    that polarity) are omitted; they could never contribute. *)

val decode_entangled : Cnf.t -> instance -> int list -> Cnf.assignment
(** Reads an assignment off a coordinating set (member indexes):
    [x-True] in the set means true, [x-False] false, absent defaults to
    false. *)

(** {2 Theorem 2: 3SAT <= EntangledMax(Qsafe)} *)

type max_instance = {
  mdb : Database.t;
  mqueries : Query.t array;
  target : int;  (** k + m: max coordinating set reaches this iff satisfiable *)
}

val to_entangled_max : Cnf.t -> max_instance
(** The one-literal-witness gadget: per clause [l1 v l2 v l3], three safe
    queries whose postconditions force at most one of them into any
    coordinating set.  Requires [Cnf.is_three_cnf].
    @raise Invalid_argument otherwise. *)

val decode_entangled_max : Cnf.t -> max_instance -> int list -> Cnf.assignment

val max_coordinating_size : Cnf.t -> int
(** The exact maximum coordinating-set size of the Theorem-2 instance,
    computed analytically as [num_vars + MaxSAT(f)] by enumerating all
    assignments (so [num_vars <= 20] required).

    Why this is the maximum: the variable queries [q(x_j)] have no
    postconditions, so any coordinating set extends with all of them;
    and for a clause [i], the three gadget queries pairwise clash on some
    [R_j] value, so at most one per clause joins — exactly one is
    compatible with an assignment [h] iff [h] satisfies the clause.
    This lets tests cover unsatisfiable formulas (which need >= 8
    clauses, i.e. more queries than {!Coordination.Brute} can
    enumerate). *)

(** {2 Appendix B: mixed coordination attributes} *)

val to_mixed_consistent : Cnf.t -> instance
(** The flights/friends construction showing that letting some queries
    coordinate on attribute [A0] and others on [A0, A1] re-encodes 3SAT.
    The resulting set is unsafe; solve it with {!Coordination.Brute} on
    tiny formulas. *)

val decode_mixed : Cnf.t -> instance -> int list -> Cnf.assignment
