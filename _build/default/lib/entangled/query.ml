open Relational

type t = {
  name : string;
  post : Cq.atom list;
  head : Cq.atom list;
  body : Cq.t;
}

let make ?(name = "") ~post ~head body =
  if head = [] then invalid_arg "Query.make: empty head";
  { name; post; head; body = Cq.make body }

let variables q =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let scan_atom (a : Cq.atom) =
    Array.iter
      (function
        | Term.Var x ->
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.add seen x ();
            out := x :: !out
          end
        | Term.Const _ -> ())
      a.args
  in
  List.iter scan_atom q.post;
  List.iter scan_atom q.head;
  List.iter scan_atom q.body.atoms;
  List.rev !out

let distinct_rels atoms =
  List.sort_uniq String.compare (List.map (fun (a : Cq.atom) -> a.rel) atoms)

let answer_relations q = distinct_rels (q.post @ q.head)

let body_relations q = distinct_rels q.body.atoms

let rename ~prefix q =
  let f x = prefix ^ x in
  let rename_atom (a : Cq.atom) =
    { a with args = Array.map (Term.rename f) a.args }
  in
  {
    q with
    post = List.map rename_atom q.post;
    head = List.map rename_atom q.head;
    body = Cq.rename_variables f q.body;
  }

let rename_set qs =
  Array.of_list
    (List.mapi
       (fun i q ->
         let q = rename ~prefix:(Printf.sprintf "q%d." i) q in
         if q.name = "" then { q with name = Printf.sprintf "q%d" i } else q)
       qs)

let well_formed db q =
  let problems = ref [] in
  List.iter
    (fun r ->
      if not (Database.mem_relation db r) then
        problems := Printf.sprintf "body relation %s not in schema" r :: !problems)
    (body_relations q);
  List.iter
    (fun r ->
      if Database.mem_relation db r then
        problems :=
          Printf.sprintf "answer relation %s collides with the schema" r
          :: !problems)
    (answer_relations q);
  (* Answer atoms over the same symbol must agree on arity, otherwise no
     unification can ever link them. *)
  let arities = Hashtbl.create 8 in
  List.iter
    (fun (a : Cq.atom) ->
      let n = Array.length a.args in
      match Hashtbl.find_opt arities a.rel with
      | None -> Hashtbl.add arities a.rel n
      | Some n' ->
        if n <> n' then
          problems :=
            Printf.sprintf "answer relation %s used with arities %d and %d"
              a.rel n' n
            :: !problems)
    (q.post @ q.head);
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))

let range_restricted q =
  let body_vars = Cq.variables q.body in
  let atom_vars atoms =
    List.concat_map (fun a -> Cq.atom_variables a) atoms
  in
  List.for_all
    (fun x -> List.mem x body_vars)
    (atom_vars q.post @ atom_vars q.head)

let pp_atoms ppf atoms =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
    Cq.pp_atom ppf atoms

let pp ppf q =
  if q.name <> "" then Format.fprintf ppf "%s: " q.name;
  Format.fprintf ppf "{@[%a@]} @[%a@] :- @[%a@]" pp_atoms q.post pp_atoms
    q.head Cq.pp q.body

let equal a b =
  a.name = b.name
  && List.equal Cq.equal_atom a.post b.post
  && List.equal Cq.equal_atom a.head b.head
  && List.equal Cq.equal_atom a.body.atoms b.body.atoms
