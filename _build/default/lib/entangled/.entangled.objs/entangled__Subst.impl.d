lib/entangled/subst.ml: Array Cq Format List Map Relational String Term Value
