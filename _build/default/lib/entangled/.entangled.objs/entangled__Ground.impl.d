lib/entangled/ground.ml: Array Containment Cq Database Eval Lazy List Query Relational Subst Term Value
