lib/entangled/safety.mli: Coordination_graph
