lib/entangled/solution.ml: Array Cq Database Eval Format Hashtbl Int List Printf Query Relation Relational String Term Tuple Value
