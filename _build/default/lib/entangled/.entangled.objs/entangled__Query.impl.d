lib/entangled/query.ml: Array Cq Database Format Hashtbl List Printf Relational String Term
