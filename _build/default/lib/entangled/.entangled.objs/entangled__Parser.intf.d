lib/entangled/parser.mli: Database Query Relational Term Value
