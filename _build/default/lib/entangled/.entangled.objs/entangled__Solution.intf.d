lib/entangled/solution.mli: Database Eval Format Query Relational
