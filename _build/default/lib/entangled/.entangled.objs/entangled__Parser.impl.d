lib/entangled/parser.ml: Array Buffer Cq Database List Printf Query Relational String Term Value
