lib/entangled/safety.ml: Array Coordination_graph Graphs Hashtbl List Option
