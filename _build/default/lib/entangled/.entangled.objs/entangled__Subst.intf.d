lib/entangled/subst.mli: Cq Format Relational Term
