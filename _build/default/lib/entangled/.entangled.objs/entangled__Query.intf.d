lib/entangled/query.mli: Cq Database Format Relational
