lib/entangled/coordination_graph.ml: Array Cq Format Graphs Hashtbl List Option Query Relational Term Value
