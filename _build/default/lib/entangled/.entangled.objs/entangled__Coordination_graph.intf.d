lib/entangled/coordination_graph.mli: Cq Format Graphs Query Relational
