lib/entangled/ground.mli: Database Eval Query Relational Subst
