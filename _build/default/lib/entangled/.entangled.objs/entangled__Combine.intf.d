lib/entangled/combine.mli: Coordination_graph Cq Format Query Relational Subst
