lib/entangled/combine.ml: Array Coordination_graph Cq Format Hashtbl List Query Relational Subst
