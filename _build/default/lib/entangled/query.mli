(** Entangled queries: [{P} H :- B]  (Section 2.1 of the paper).

    [P] (postconditions) and [H] (head) are atoms over {e answer relation}
    symbols, disjoint from the database schema; [B] (body) is a
    conjunction of atoms over database relations.  A query's
    postconditions are what it needs {e other} queries in the coordinating
    set to produce; its head is what it offers. *)

open Relational

type t = {
  name : string;  (** a label for display and workload bookkeeping *)
  post : Cq.atom list;
  head : Cq.atom list;
  body : Cq.t;
}

val make :
  ?name:string -> post:Cq.atom list -> head:Cq.atom list -> Cq.atom list -> t
(** [make ~post ~head body].
    @raise Invalid_argument when the head is empty — a query must offer at
    least one answer atom (the paper's examples and reductions all do, and
    a headless query could never have its variables mentioned). *)

val variables : t -> string list
(** Distinct variables across post, head and body, first occurrence
    first. *)

val answer_relations : t -> string list
(** Distinct relation symbols used in post and head. *)

val body_relations : t -> string list

val rename : prefix:string -> t -> t
(** Prefix every variable name, for renaming query sets apart. *)

val rename_set : t list -> t array
(** Renames the queries apart (variables of query [i] get prefix ["q<i>."])
    and fixes up empty names to ["q<i>"]. *)

val well_formed : Database.t -> t -> (unit, string) result
(** Checks the two syntactic conditions of Section 2.1 against an
    instance: body relation symbols must exist in the database schema, and
    answer relation symbols must {e not} collide with it.  Also checks
    arity consistency of answer atoms within the query. *)

val range_restricted : t -> bool
(** True when every variable of post and head occurs in the body.  The
    solvers do not require this per-query (unification with partners can
    bind head variables), but the final combined query must satisfy it up
    to constants; see {!Combine}. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation: [{P} H :- B]. *)

val equal : t -> t -> bool
