(** Combined queries: unifying a candidate coordinating set.

    Given a subset [S] of queries, every postcondition atom of a member
    must be made equal to a head atom of a member (condition (3) of
    Definition 1).  Under safety there is at most one candidate head per
    postcondition, so unification is deterministic; this module implements
    that deterministic case and reports ambiguity otherwise (the
    brute-force solver does its own backtracking over choices). *)

open Relational

type failure =
  | Unsatisfiable_post of int * int
      (** this member's postcondition has no candidate head within [S] *)
  | Ambiguous_post of int * int * int
      (** [(query, post_index, candidates)]: more than one candidate within
          [S] — the set is unsafe relative to [S] *)
  | Clash of int * int
      (** unification of this member's postcondition with its unique
          candidate failed on a constant clash *)

val pp_failure : Query.t array -> Format.formatter -> failure -> unit

val unify_set :
  Coordination_graph.t -> members:int list -> (Subst.t, failure) result
(** Thread a most general unifier through every (postcondition, head)
    pair induced by [members].  Queries must have been renamed apart. *)

val combined_body : Coordination_graph.t -> members:int list -> Subst.t -> Cq.t
(** The conjunction of the members' bodies under the unifier — the single
    query the paper sends to the database. *)
