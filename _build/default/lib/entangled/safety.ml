let unsafe_posts (g : Coordination_graph.t) =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (e : Coordination_graph.edge) ->
      let key = (e.src, e.post_index) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    g.extended;
  Hashtbl.fold (fun key c acc -> if c > 1 then key :: acc else acc) counts []
  |> List.sort compare

let is_safe_query g q = List.for_all (fun (s, _) -> s <> q) (unsafe_posts g)

let is_safe g = unsafe_posts g = []

let is_unique (g : Coordination_graph.t) =
  let n = Array.length g.queries in
  n <= 1
  ||
  let r = Graphs.Scc.compute g.graph in
  r.count = 1

let classify g =
  if not (is_safe g) then `Unsafe
  else if is_unique g then `Safe_unique
  else `Safe
