(** Substitutions over flat terms.

    A substitution maps variable names to terms (variables or constants).
    Because the term language has no function symbols, a most general
    unifier either exists or fails on a constant clash — no occurs check
    is needed, and resolution is a short walk through variable-to-variable
    links. *)

open Relational

type t

val empty : t

val is_empty : t -> bool

val resolve : t -> Term.t -> Term.t
(** [resolve s t] follows variable links until a constant or an unbound
    variable (the class representative) is reached. *)

val unify_terms : t -> Term.t -> Term.t -> t option
(** Extend [s] so the two terms become equal; [None] on a constant
    clash. *)

val unify_atoms : t -> Cq.atom -> Cq.atom -> t option
(** Positionwise unification; [None] when the relations or arities differ
    or some position clashes. *)

val apply_term : t -> Term.t -> Term.t

val apply_atom : t -> Cq.atom -> Cq.atom

val apply_cq : t -> Cq.t -> Cq.t

val bindings : t -> (string * Term.t) list
(** Fully-resolved bindings [x -> resolve s (Var x)] for every variable
    mentioned by the substitution, sorted by name.  Identity bindings
    (a representative mapping to itself) are omitted. *)

val domain_size : t -> int

val equal : t -> t -> bool
(** Equality of the induced (resolved) bindings.  Substitutions that
    resolve every variable identically are equal even if built through
    different link chains. *)

val pp : Format.formatter -> t -> unit
