open Relational

let assignment_of db queries ~members subst body_valuation =
  let default_value =
    lazy
      (let dom = Database.active_domain db in
       if Value.Set.is_empty dom then None else Some (Value.Set.min_elt dom))
  in
  let extend acc x =
    if Eval.Binding.mem x acc then Some acc
    else
      match Subst.resolve subst (Term.Var x) with
      | Term.Const v -> Some (Eval.Binding.add x v acc)
      | Term.Var rep -> (
        match Eval.Binding.find_opt rep body_valuation with
        | Some v -> Some (Eval.Binding.add x v acc)
        | None -> (
          match Lazy.force default_value with
          | None -> None
          | Some v -> Some (Eval.Binding.add x v acc)))
  in
  let vars =
    List.concat_map (fun q -> Query.variables queries.(q)) members
  in
  List.fold_left
    (fun acc x -> match acc with None -> None | Some acc -> extend acc x)
    (Some Eval.Binding.empty) vars

let solve ?(minimize = false) db queries ~members subst =
  let g_body =
    let bodies =
      List.concat_map (fun q -> queries.(q).Query.body.Cq.atoms) members
    in
    Subst.apply_cq subst (Cq.make bodies)
  in
  if not minimize then
    match Eval.find_first db g_body with
    | None -> None
    | Some body_valuation ->
      assignment_of db queries ~members subst body_valuation
  else begin
    let core, retraction = Containment.minimize_with_retraction g_body in
    match Eval.find_first db core with
    | None -> None
    | Some core_valuation ->
      (* Extend the core witness to every variable of the original body
         through the retraction (Chandra–Merlin). *)
      let body_valuation =
        List.fold_left
          (fun acc (x, t) ->
            match t with
            | Term.Const v -> Eval.Binding.add x v acc
            | Term.Var y -> (
              match Eval.Binding.find_opt y core_valuation with
              | Some v -> Eval.Binding.add x v acc
              | None -> acc))
          Eval.Binding.empty retraction
      in
      assignment_of db queries ~members subst body_valuation
  end
