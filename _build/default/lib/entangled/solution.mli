(** Coordinating sets and an independent validity check.

    {!validate} re-checks Definition 1 directly against the instance — it
    shares no logic with the solvers, so tests can use it as ground truth
    for any algorithm's output. *)

open Relational

type t = {
  members : int list;          (** indexes into the query array, sorted *)
  assignment : Eval.valuation; (** h: every variable of every member *)
}

val make : members:int list -> assignment:Eval.valuation -> t

val size : t -> int

val validate : Database.t -> Query.t array -> t -> (unit, string) result
(** Checks, for [S] = [members] and [h] = [assignment]:
    (1) every variable occurring in a member is assigned;
    (2) the grounded version of every body atom is in the instance;
    (3) grounded postconditions of members form a subset of grounded
        heads of members.
    Also rejects an empty member list and out-of-range indexes. *)

val member_names : Query.t array -> t -> string list

val pp : Query.t array -> Format.formatter -> t -> unit
