open Relational

type t = {
  members : int list;
  assignment : Eval.valuation;
}

let make ~members ~assignment =
  { members = List.sort_uniq Int.compare members; assignment }

let size s = List.length s.members

type ground_atom = string * Value.t array

let ground_atom assignment (a : Cq.atom) : (ground_atom, string) result =
  let out = Array.make (Array.length a.args) (Value.Int 0) in
  let missing = ref None in
  Array.iteri
    (fun i t ->
      match t with
      | Term.Const v -> out.(i) <- v
      | Term.Var x -> (
        match Eval.Binding.find_opt x assignment with
        | Some v -> out.(i) <- v
        | None -> if !missing = None then missing := Some x))
    a.args;
  match !missing with
  | Some x -> Error (Printf.sprintf "variable %s unassigned" x)
  | None -> Ok (a.rel, out)

let validate db queries s =
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  let n = Array.length queries in
  if s.members = [] then fail "empty coordinating set"
  else if List.exists (fun i -> i < 0 || i >= n) s.members then
    fail "member index out of range"
  else begin
    let member_queries = List.map (fun i -> (i, queries.(i))) s.members in
    (* (1) every variable assigned; collect ground atoms as we go. *)
    let collect atoms =
      List.fold_left
        (fun acc a ->
          match acc with
          | Error _ as e -> e
          | Ok gs -> (
            match ground_atom s.assignment a with
            | Error m -> Error m
            | Ok g -> Ok (g :: gs)))
        (Ok []) atoms
    in
    let all_posts = List.concat_map (fun (_, q) -> q.Query.post) member_queries in
    let all_heads = List.concat_map (fun (_, q) -> q.Query.head) member_queries in
    let all_bodies =
      List.concat_map (fun (_, q) -> q.Query.body.Cq.atoms) member_queries
    in
    match (collect all_posts, collect all_heads, collect all_bodies) with
    | Error m, _, _ | _, Error m, _ | _, _, Error m ->
      fail "condition (1) fails: %s" m
    | Ok posts, Ok heads, Ok bodies -> (
      (* (2) grounded bodies are in the instance. *)
      let check_body (rel, vals) =
        match Database.relation_opt db rel with
        | None -> Some (Printf.sprintf "body relation %s missing" rel)
        | Some r ->
          if Relation.mem r vals then None
          else
            Some
              (Format.asprintf "grounded body atom %s%a not in instance" rel
                 Tuple.pp vals)
      in
      match List.find_map check_body bodies with
      | Some m -> fail "condition (2) fails: %s" m
      | None -> (
        (* (3) grounded posts are a subset of grounded heads. *)
        let head_set = Hashtbl.create 32 in
        List.iter (fun (rel, vals) -> Hashtbl.replace head_set (rel, vals) ())
          heads;
        let missing =
          List.find_opt
            (fun (rel, vals) -> not (Hashtbl.mem head_set (rel, vals)))
            posts
        in
        match missing with
        | Some (rel, vals) ->
          fail "condition (3) fails: postcondition %s%a not among heads" rel
            Tuple.pp vals
        | None -> Ok ()))
  end

let member_names queries s = List.map (fun i -> queries.(i).Query.name) s.members

let pp queries ppf s =
  Format.fprintf ppf "@[<v>coordinating set {%s}@,assignment: %a@]"
    (String.concat ", " (member_names queries s))
    Eval.pp_valuation s.assignment
