(** Safety and uniqueness of query sets (Definitions 2 and 3). *)

val unsafe_posts : Coordination_graph.t -> (int * int) list
(** Postcondition atoms [(query, post_index)] with two or more candidate
    head atoms in the extended graph — the witnesses of unsafety. *)

val is_safe_query : Coordination_graph.t -> int -> bool
(** Query [q] is safe in [Q] when none of its postcondition atoms unifies
    with more than one head atom appearing in [Q]. *)

val is_safe : Coordination_graph.t -> bool

val is_unique : Coordination_graph.t -> bool
(** For a safe set: unique iff the coordination graph has a directed path
    between every two vertices, i.e. it is strongly connected (a single
    SCC).  Meaningful per Definition 3 only on safe sets, but computable
    on any graph. *)

val classify : Coordination_graph.t -> [ `Safe_unique | `Safe | `Unsafe ]
