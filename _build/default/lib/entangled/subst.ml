open Relational
module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty

let is_empty = M.is_empty

let rec resolve s t =
  match t with
  | Term.Const _ -> t
  | Term.Var x -> (
    match M.find_opt x s with
    | None -> t
    | Some t' -> resolve s t')

let unify_terms s a b =
  let a = resolve s a and b = resolve s b in
  match (a, b) with
  | Term.Const u, Term.Const v -> if Value.equal u v then Some s else None
  | Term.Var x, Term.Var y -> if x = y then Some s else Some (M.add x b s)
  | Term.Var x, (Term.Const _ as c) | (Term.Const _ as c), Term.Var x ->
    Some (M.add x c s)

let unify_atoms s (a : Cq.atom) (b : Cq.atom) =
  if a.rel <> b.rel || Array.length a.args <> Array.length b.args then None
  else begin
    let n = Array.length a.args in
    let rec loop s i =
      if i = n then Some s
      else
        match unify_terms s a.args.(i) b.args.(i) with
        | None -> None
        | Some s' -> loop s' (i + 1)
    in
    loop s 0
  end

let apply_term s t = resolve s t

let apply_atom s (a : Cq.atom) = { a with args = Array.map (resolve s) a.args }

let apply_cq s (q : Cq.t) = { Cq.atoms = List.map (apply_atom s) q.atoms }

let bindings s =
  M.fold
    (fun x _ acc ->
      let t = resolve s (Term.Var x) in
      if Term.equal t (Term.Var x) then acc else (x, t) :: acc)
    s []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let domain_size s = M.cardinal s

let equal a b =
  List.equal
    (fun (x, t) (y, u) -> String.equal x y && Term.equal t u)
    (bindings a) (bindings b)

let pp ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (x, t) -> Format.fprintf ppf "%s := %a" x Term.pp t))
    (bindings s)
