open Relational

type edge = {
  src : int;
  post_index : int;
  dst : int;
  head_index : int;
}

type t = {
  queries : Query.t array;
  extended : edge list;
  graph : Graphs.Digraph.t;
}

let compatible (a : Cq.atom) (b : Cq.atom) =
  a.rel = b.rel
  && Array.length a.args = Array.length b.args
  &&
  let n = Array.length a.args in
  let rec loop i =
    i = n
    ||
    match (a.args.(i), b.args.(i)) with
    | Term.Const u, Term.Const v -> Value.equal u v && loop (i + 1)
    | (Term.Var _, _ | _, Term.Var _) -> loop (i + 1)
  in
  loop 0

(* Head atoms are bucketed two levels deep: by relation symbol, then by
   the constant in their first argument position (atoms whose first
   argument is a variable go into a separate wildcard list).  Real
   workloads name the coordination partner in the first position —
   R(user, x) — so a post atom with a constant there only ever scans the
   handful of heads that could match, making graph construction
   near-linear instead of quadratic (the quantity Figure 6 measures). *)
type head_bucket = {
  by_first_const : (int * int * Cq.atom) list Value.Hashtbl.t;
  mutable var_first : (int * int * Cq.atom) list;
}

let build queries =
  let n = Array.length queries in
  let heads_by_rel : (string, head_bucket) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun j q ->
      List.iteri
        (fun hi (h : Cq.atom) ->
          let bucket =
            match Hashtbl.find_opt heads_by_rel h.rel with
            | Some b -> b
            | None ->
              let b =
                { by_first_const = Value.Hashtbl.create 16; var_first = [] }
              in
              Hashtbl.add heads_by_rel h.rel b;
              b
          in
          let entry = (j, hi, h) in
          match (if Array.length h.args = 0 then Term.Var "" else h.args.(0)) with
          | Term.Const v ->
            let l =
              Option.value ~default:[]
                (Value.Hashtbl.find_opt bucket.by_first_const v)
            in
            Value.Hashtbl.replace bucket.by_first_const v (entry :: l)
          | Term.Var _ -> bucket.var_first <- entry :: bucket.var_first)
        q.Query.head)
    queries;
  let graph = Graphs.Digraph.create n in
  let extended = ref [] in
  let try_entry i pi p (j, hi, h) =
    if compatible p h then begin
      extended := { src = i; post_index = pi; dst = j; head_index = hi } :: !extended;
      Graphs.Digraph.add_edge graph i j
    end
  in
  Array.iteri
    (fun i q ->
      List.iteri
        (fun pi (p : Cq.atom) ->
          match Hashtbl.find_opt heads_by_rel p.rel with
          | None -> ()
          | Some bucket ->
            let candidates =
              match
                if Array.length p.args = 0 then Term.Var "" else p.args.(0)
              with
              | Term.Const v ->
                Option.value ~default:[]
                  (Value.Hashtbl.find_opt bucket.by_first_const v)
                @ bucket.var_first
              | Term.Var _ ->
                Value.Hashtbl.fold
                  (fun _ l acc -> l @ acc)
                  bucket.by_first_const bucket.var_first
            in
            List.iter (try_entry i pi p) candidates)
        q.Query.post)
    queries;
  (* Deterministic edge order: by (src, post_index, dst, head_index). *)
  let extended = List.sort compare !extended in
  { queries; extended; graph }

let post_targets g ~src ~post_index =
  List.filter_map
    (fun e ->
      if e.src = src && e.post_index = post_index then Some (e.dst, e.head_index)
      else None)
    g.extended

let post_count g =
  Array.fold_left (fun acc q -> acc + List.length q.Query.post) 0 g.queries

let prune_unsatisfiable g ~alive =
  let n = Array.length g.queries in
  if Array.length alive <> n then
    invalid_arg "Coordination_graph.prune_unsatisfiable: mask size mismatch";
  (* For each (src, post_index), the list of candidate dst queries. *)
  let candidates = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = (e.src, e.post_index) in
      let l = Option.value ~default:[] (Hashtbl.find_opt candidates key) in
      Hashtbl.replace candidates key (e.dst :: l))
    g.extended;
  let has_live_candidate src post_index =
    match Hashtbl.find_opt candidates (src, post_index) with
    | None -> false
    | Some ds -> List.exists (fun d -> alive.(d)) ds
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i q ->
        if alive.(i) then
          List.iteri
            (fun pi (_ : Cq.atom) ->
              if alive.(i) && not (has_live_candidate i pi) then begin
                alive.(i) <- false;
                changed := true
              end)
            q.Query.post)
      g.queries
  done

let pp ppf g =
  Format.fprintf ppf "@[<v>coordination graph over %d queries"
    (Array.length g.queries);
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  (%s, post %d) -> (%s, head %d)"
        g.queries.(e.src).Query.name e.post_index g.queries.(e.dst).Query.name
        e.head_index)
    g.extended;
  Format.fprintf ppf "@]"
