(** Grounding a combined query: the single database probe per candidate
    set, extended to a full assignment over all member variables. *)

open Relational

val solve :
  ?minimize:bool ->
  Database.t ->
  Query.t array ->
  members:int list ->
  Subst.t ->
  Eval.valuation option
(** [solve db queries ~members subst] evaluates the members' combined body
    under [subst] with choose-1 semantics.

    [minimize] (default [false]) first replaces the combined body by its
    core ({!Relational.Containment.minimize_with_retraction}) and maps
    the witness back through the retraction — fewer joins, identical
    satisfiability, still a full Definition-1 assignment.  On success the returned
    valuation covers {e every} variable of every member: body variables
    from the database witness, head/post variables through the unifier,
    and any variable left unconstrained (possible when unification bound
    no constant and the body never mentions it) from the instance's active
    domain — Definition 1 only asks for {e some} domain value.  Returns
    [None] when the body is unsatisfiable or a free variable exists while
    the active domain is empty. *)

val assignment_of :
  Database.t ->
  Query.t array ->
  members:int list ->
  Subst.t ->
  Eval.valuation ->
  Eval.valuation option
(** The valuation-extension part of {!solve}, split out so callers that
    already hold a body witness can reuse it. *)
