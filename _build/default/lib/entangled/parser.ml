open Relational

type statement =
  | Table of string * string list
  | Fact of string * Value.t list
  | Query_stmt of Query.t

type program = statement list

exception Syntax_error of int * string

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string     (* identifier, case preserved *)
  | INT of int
  | STRING of string    (* quoted *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | TURNSTILE           (* :- *)
  | DOT
  | EOF

let pp_token = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | COLON -> ":"
  | TURNSTILE -> ":-"
  | DOT -> "."
  | EOF -> "<eof>"

let is_ident_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let error msg = raise (Syntax_error (!line, msg)) in
  let rec scan i =
    if i >= n then emit EOF
    else
      match input.[i] with
      | ' ' | '\t' | '\r' -> scan (i + 1)
      | '\n' ->
        incr line;
        scan (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
        let rec skip j =
          if j >= n || input.[j] = '\n' then scan j else skip (j + 1)
        in
        skip (i + 2)
      | '{' ->
        emit LBRACE;
        scan (i + 1)
      | '}' ->
        emit RBRACE;
        scan (i + 1)
      | '(' ->
        emit LPAREN;
        scan (i + 1)
      | ')' ->
        emit RPAREN;
        scan (i + 1)
      | ',' ->
        emit COMMA;
        scan (i + 1)
      | '.' ->
        emit DOT;
        scan (i + 1)
      | ':' when i + 1 < n && input.[i + 1] = '-' ->
        emit TURNSTILE;
        scan (i + 2)
      | ':' ->
        emit COLON;
        scan (i + 1)
      | ('\'' | '"') as quote ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then error "unterminated string literal"
          else if input.[j] = '\\' && j + 1 < n then begin
            (* Backslash escapes: backslash-n is a newline, anything else
               is the character itself (quotes and backslash included). *)
            (match input.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | c -> Buffer.add_char buf c);
            str (j + 2)
          end
          else if input.[j] = quote then begin
            emit (STRING (Buffer.contents buf));
            scan (j + 1)
          end
          else begin
            if input.[j] = '\n' then incr line;
            Buffer.add_char buf input.[j];
            str (j + 1)
          end
        in
        str (i + 1)
      | '0' .. '9' ->
        let j = ref i in
        while !j < n && (match input.[!j] with '0' .. '9' -> true | _ -> false) do
          incr j
        done;
        emit (INT (int_of_string (String.sub input i (!j - i))));
        scan !j
      | '-' when i + 1 < n && (match input.[i + 1] with '0' .. '9' -> true | _ -> false) ->
        let j = ref (i + 1) in
        while !j < n && (match input.[!j] with '0' .. '9' -> true | _ -> false) do
          incr j
        done;
        emit (INT (int_of_string (String.sub input i (!j - i))));
        scan !j
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        emit (IDENT (String.sub input i (!j - i)));
        scan !j
      | c -> error (Printf.sprintf "unexpected character %C" c)
  in
  scan 0;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type stream = {
  mutable toks : (token * int) list;
}

let peek st = match st.toks with [] -> (EOF, 0) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let t, line = peek st in
  if t = tok then advance st
  else
    raise
      (Syntax_error
         (line, Printf.sprintf "expected %s, found %s" (pp_token tok) (pp_token t)))

let syntax_error st msg =
  let _, line = peek st in
  raise (Syntax_error (line, msg))

let is_lowercase s = s <> "" && match s.[0] with 'a' .. 'z' -> true | _ -> false

let term_of_token st =
  match peek st with
  | INT n, _ ->
    advance st;
    Term.Const (Value.Int n)
  | STRING s, _ ->
    advance st;
    Term.Const (Value.Str s)
  | IDENT "true", _ ->
    advance st;
    Term.Const (Value.Bool true)
  | IDENT "false", _ ->
    advance st;
    Term.Const (Value.Bool false)
  | IDENT s, _ ->
    advance st;
    if is_lowercase s then Term.Var s else Term.Const (Value.Str s)
  | t, line ->
    raise (Syntax_error (line, Printf.sprintf "expected a term, found %s" (pp_token t)))

let parse_term_list st =
  let rec loop acc =
    let t = term_of_token st in
    match peek st with
    | COMMA, _ ->
      advance st;
      loop (t :: acc)
    | _ -> List.rev (t :: acc)
  in
  match peek st with
  | RPAREN, _ -> []
  | _ -> loop []

let parse_atom st =
  match peek st with
  | IDENT rel, _ ->
    advance st;
    expect st LPAREN;
    let args = parse_term_list st in
    expect st RPAREN;
    { Cq.rel; args = Array.of_list args }
  | t, line ->
    raise
      (Syntax_error (line, Printf.sprintf "expected an atom, found %s" (pp_token t)))

(* Atom lists may be empty; they end at the closing delimiter given by
   [stop]. *)
let parse_atom_list st ~stop =
  let rec loop acc =
    let a = parse_atom st in
    match peek st with
    | COMMA, _ ->
      advance st;
      loop (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  let t, _ = peek st in
  if List.mem t stop then [] else loop []

let parse_query_body st name =
  expect st LBRACE;
  let post = parse_atom_list st ~stop:[ RBRACE ] in
  expect st RBRACE;
  let head = parse_atom_list st ~stop:[ TURNSTILE; DOT ] in
  let body =
    match peek st with
    | TURNSTILE, _ ->
      advance st;
      parse_atom_list st ~stop:[ DOT ]
    | _ -> []
  in
  expect st DOT;
  if head = [] then syntax_error st "query must have at least one head atom";
  Query.make ~name ~post ~head body

let parse_statement st =
  match peek st with
  | IDENT "table", _ ->
    advance st;
    let a = parse_atom st in
    expect st DOT;
    let attrs =
      Array.to_list a.args
      |> List.map (function
           | Term.Var x -> x
           | Term.Const v -> Value.to_string v)
    in
    Table (a.rel, attrs)
  | IDENT "fact", _ ->
    advance st;
    let a = parse_atom st in
    expect st DOT;
    let values =
      Array.to_list a.args
      |> List.map (function
           | Term.Const v -> v
           | Term.Var x ->
             syntax_error st (Printf.sprintf "fact contains variable %s" x))
    in
    Fact (a.rel, values)
  | IDENT "query", _ ->
    advance st;
    let name =
      match (peek st, st.toks) with
      | (IDENT n, _), _ :: (COLON, _) :: _ ->
        advance st;
        advance st;
        n
      | _ -> ""
    in
    Query_stmt (parse_query_body st name)
  | t, line ->
    raise
      (Syntax_error
         ( line,
           Printf.sprintf "expected 'table', 'fact' or 'query', found %s"
             (pp_token t) ))

let parse_program input =
  let st = { toks = tokenize input } in
  let rec loop acc =
    match peek st with
    | EOF, _ -> List.rev acc
    | _ -> loop (parse_statement st :: acc)
  in
  loop []

let parse_query input =
  let st = { toks = tokenize input } in
  (match peek st with
  | IDENT "query", _ -> advance st
  | _ -> ());
  let name =
    match (peek st, st.toks) with
    | (IDENT n, _), _ :: (COLON, _) :: _ ->
      advance st;
      advance st;
      n
    | _ -> ""
  in
  let q = parse_query_body st name in
  expect st EOF;
  q

let load_program db program =
  List.filter_map
    (fun stmt ->
      match stmt with
      | Table (name, attrs) ->
        ignore (Database.create_table' db name attrs);
        None
      | Fact (rel, values) ->
        (match Database.relation_opt db rel with
        | None ->
          invalid_arg (Printf.sprintf "fact for undeclared table %s" rel)
        | Some _ -> Database.insert db rel values);
        None
      | Query_stmt q -> Some q)
    program

let is_bare_constant s =
  (* Reads back as the same constant: capitalized identifier. *)
  s <> ""
  && (match s.[0] with 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      match c with
      | '\'' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let value_to_syntax = function
  | Value.Int n -> string_of_int n
  | Value.Bool b -> string_of_bool b
  | Value.Str s -> if is_bare_constant s then s else quote_string s

let term_to_syntax = function
  | Term.Var x -> x
  | Term.Const v -> value_to_syntax v

let atom_to_syntax (a : Cq.atom) =
  Printf.sprintf "%s(%s)" a.rel
    (String.concat ", " (Array.to_list (Array.map term_to_syntax a.args)))

let query_to_string q =
  let atoms atoms = String.concat ", " (List.map atom_to_syntax atoms) in
  let body =
    match q.Query.body.Cq.atoms with
    | [] -> ""
    | bs -> " :- " ^ atoms bs
  in
  let name = if q.Query.name = "" then "" else q.Query.name ^ ": " in
  Printf.sprintf "query %s{ %s } %s%s." name (atoms q.Query.post)
    (atoms q.Query.head) body
