open Relational

type failure =
  | Unsatisfiable_post of int * int
  | Ambiguous_post of int * int * int
  | Clash of int * int

let pp_failure queries ppf f =
  let name i = queries.(i).Query.name in
  match f with
  | Unsatisfiable_post (q, pi) ->
    Format.fprintf ppf "postcondition %d of %s has no candidate head" pi
      (name q)
  | Ambiguous_post (q, pi, k) ->
    Format.fprintf ppf "postcondition %d of %s has %d candidate heads" pi
      (name q) k
  | Clash (q, pi) ->
    Format.fprintf ppf "unifying postcondition %d of %s clashed" pi (name q)

let post_atom (g : Coordination_graph.t) q pi = List.nth g.queries.(q).Query.post pi

let head_atom (g : Coordination_graph.t) q hi = List.nth g.queries.(q).Query.head hi

let unify_set (g : Coordination_graph.t) ~members =
  let in_set = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace in_set q ()) members;
  (* Collect, per member post atom, the candidates inside the set. *)
  let result = ref (Ok Subst.empty) in
  let step q pi =
    match !result with
    | Error _ -> ()
    | Ok subst -> (
      let targets =
        List.filter
          (fun (d, _) -> Hashtbl.mem in_set d)
          (Coordination_graph.post_targets g ~src:q ~post_index:pi)
      in
      match targets with
      | [] -> result := Error (Unsatisfiable_post (q, pi))
      | _ :: _ :: _ -> result := Error (Ambiguous_post (q, pi, List.length targets))
      | [ (d, hi) ] -> (
        let p = post_atom g q pi and h = head_atom g d hi in
        match Subst.unify_atoms subst p h with
        | None -> result := Error (Clash (q, pi))
        | Some subst' -> result := Ok subst'))
  in
  List.iter
    (fun q ->
      List.iteri (fun pi (_ : Cq.atom) -> step q pi) g.queries.(q).Query.post)
    members;
  !result

let combined_body (g : Coordination_graph.t) ~members subst =
  let bodies =
    List.concat_map (fun q -> g.queries.(q).Query.body.Cq.atoms) members
  in
  Subst.apply_cq subst (Cq.make bodies)
