(** Text syntax for entangled-query programs.

    A program is a sequence of statements, each ending in a period:

    {v
    -- comments run to end of line
    table Flights(flightId, destination).
    fact Flights(101, Zurich).
    query gwyneth: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).
    query chris:   { } R(Chris, y) :- Flights(y, Zurich).
    v}

    Term conventions follow the paper's typography: lowercase identifiers
    are variables, capitalized identifiers and quoted strings are string
    constants, decimal literals are integers, and the reserved words
    [true]/[false] are booleans.  A query body may be empty, written
    [:- .] or by omitting [:-] entirely (the paper's [:- ∅]). *)

open Relational

type statement =
  | Table of string * string list
  | Fact of string * Value.t list
  | Query_stmt of Query.t

type program = statement list

exception Syntax_error of int * string
(** [(line, message)], lines from 1. *)

val parse_program : string -> program

val parse_query : string -> Query.t
(** Parses a single [query] statement (the leading [query] keyword is
    optional here). *)

val load_program : Database.t -> program -> Query.t list
(** Creates tables, inserts facts, returns queries in order.
    @raise Invalid_argument on a fact for an undeclared table or with the
    wrong arity, mirroring {!Database.insert}. *)

val value_to_syntax : Value.t -> string
(** Renders a constant so the parser reads it back as the same constant:
    integers and booleans bare, capitalized identifiers bare, any other
    string single-quoted (in particular lowercase identifiers, which
    would otherwise lex as variables). *)

val term_to_syntax : Term.t -> string
(** Variables print bare (they must be lowercase identifiers to round
    trip), constants via {!value_to_syntax}. *)

val query_to_string : Query.t -> string
(** Renders a query back into parsable syntax (modulo variable-name
    conventions: variables must be lowercase for a round trip). *)
