(** Topological ordering of DAGs (Kahn's algorithm). *)

exception Cycle of int list
(** Raised with (some of) the nodes of a cycle when the graph is cyclic. *)

val sort : Digraph.t -> int list
(** A topological order: every edge goes from an earlier to a later node.
    @raise Cycle when the graph has a directed cycle (self-loops count). *)

val reverse_sort : Digraph.t -> int list
(** [reverse_sort g] is [List.rev (sort g)]: successors first — the
    processing order of the SCC coordination algorithm. *)

val is_topological_order : Digraph.t -> int list -> bool
(** Checks that the list is a permutation of the nodes respecting all
    edges.  Used by tests. *)
