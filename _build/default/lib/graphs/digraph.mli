(** Directed graphs over dense integer node ids [0 .. n-1].

    This is the substrate for coordination graphs: nodes are query indexes.
    Parallel edges are collapsed (edge sets); self-loops are allowed.
    Mutation is restricted to edge insertion — the coordination algorithms
    build a graph once and then only analyse it (removals are modelled with
    {!induced_subgraph} / alive masks, matching the paper's cleaning
    phases). *)

type t

val create : int -> t
(** [create n] is the edgeless graph on nodes [0..n-1].
    @raise Invalid_argument if [n < 0]. *)

val node_count : t -> int

val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the edge [u -> v]; idempotent.
    @raise Invalid_argument on out-of-range nodes. *)

val mem_edge : t -> int -> int -> bool

val successors : t -> int -> int list
(** Out-neighbours in insertion order. *)

val predecessors : t -> int -> int list

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_edges : (int -> int -> unit) -> t -> unit

val edges : t -> (int * int) list

val nodes : t -> int list

val transpose : t -> t

val induced_subgraph : t -> keep:(int -> bool) -> t
(** Same node-id space [0..n-1]; keeps exactly the edges whose both
    endpoints satisfy [keep].  Callers that need the node subset keep the
    [keep] mask alongside. *)

val of_edges : int -> (int * int) list -> t

val equal : t -> t -> bool
(** Same node count and same edge sets. *)

val pp : Format.formatter -> t -> unit
