let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(name = "coordination") ?(label = string_of_int)
    ?(highlight = fun _ -> false) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  List.iter
    (fun v ->
      let attrs =
        if highlight v then ", style=filled, fillcolor=lightblue" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v (escape (label v)) attrs))
    (Digraph.nodes g);
  Digraph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name ?label ?highlight g ~path =
  let oc = open_out path in
  output_string oc (to_string ?name ?label ?highlight g);
  close_out oc
