type t = {
  n : int;
  succ : int list array;       (* reversed insertion order; normalised on read *)
  pred : int list array;
  edge_set : (int * int, unit) Hashtbl.t;
  mutable edge_count : int;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative node count";
  {
    n;
    succ = Array.make n [];
    pred = Array.make n [];
    edge_set = Hashtbl.create (max 16 n);
    edge_count = 0;
  }

let node_count g = g.n

let edge_count g = g.edge_count

let check_node g u =
  if u < 0 || u >= g.n then
    invalid_arg (Printf.sprintf "Digraph: node %d out of [0,%d)" u g.n)

let mem_edge g u v =
  check_node g u;
  check_node g v;
  Hashtbl.mem g.edge_set (u, v)

let add_edge g u v =
  check_node g u;
  check_node g v;
  if not (Hashtbl.mem g.edge_set (u, v)) then begin
    Hashtbl.add g.edge_set (u, v) ();
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v);
    g.edge_count <- g.edge_count + 1
  end

let successors g u =
  check_node g u;
  List.rev g.succ.(u)

let predecessors g v =
  check_node g v;
  List.rev g.pred.(v)

let out_degree g u =
  check_node g u;
  List.length g.succ.(u)

let in_degree g v =
  check_node g v;
  List.length g.pred.(v)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) (List.rev g.succ.(u))
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let nodes g = List.init g.n Fun.id

let transpose g =
  let t = create g.n in
  iter_edges (fun u v -> add_edge t v u) g;
  t

let induced_subgraph g ~keep =
  let s = create g.n in
  iter_edges (fun u v -> if keep u && keep v then add_edge s u v) g;
  s

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let equal a b =
  a.n = b.n && a.edge_count = b.edge_count
  && Hashtbl.fold (fun e () acc -> acc && Hashtbl.mem b.edge_set e) a.edge_set true

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d edges" g.n g.edge_count;
  iter_edges (fun u v -> Format.fprintf ppf "@,  %d -> %d" u v) g;
  Format.fprintf ppf "@]"
