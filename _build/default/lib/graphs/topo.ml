exception Cycle of int list

let sort g =
  let n = Digraph.node_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr emitted;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (Digraph.successors g v)
  done;
  if !emitted < n then begin
    let remaining =
      List.filter (fun v -> indeg.(v) > 0) (Digraph.nodes g)
    in
    raise (Cycle remaining)
  end;
  List.rev !order

let reverse_sort g = List.rev (sort g)

let is_topological_order g order =
  let n = Digraph.node_count g in
  if List.length order <> n then false
  else begin
    let position = Array.make n (-1) in
    List.iteri (fun i v -> if v >= 0 && v < n then position.(v) <- i) order;
    Array.for_all (fun p -> p >= 0) position
    &&
    let ok = ref true in
    Digraph.iter_edges (fun u v -> if position.(u) >= position.(v) then ok := false) g;
    !ok
  end
