type result = {
  count : int;
  component : int array;
  members : int list array;
}

(* Iterative Tarjan.  Components are emitted sinks-first, so an edge
   between distinct components always goes from a higher id to a lower
   id. *)
let compute_masked g ~alive =
  let n = Digraph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  let members_rev = ref [] in
  (* Explicit DFS frames: (node, remaining successors). *)
  let visit root =
    let frames = ref [ (root, ref (Digraph.successors g root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, succs) :: rest -> (
        match !succs with
        | w :: ws when not (alive w) ->
          succs := ws
        | w :: ws when index.(w) = -1 ->
          succs := ws;
          index.(w) <- !next_index;
          lowlink.(w) <- !next_index;
          incr next_index;
          stack := w :: !stack;
          on_stack.(w) <- true;
          frames := (w, ref (Digraph.successors g w)) :: !frames
        | w :: ws ->
          succs := ws;
          if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
          (* v is done: pop frame, maybe emit a component, propagate
             lowlink to the parent. *)
          frames := rest;
          if lowlink.(v) = index.(v) then begin
            let c = !comp_count in
            incr comp_count;
            let ms = ref [] in
            let continue_popping = ref true in
            while !continue_popping do
              match !stack with
              | [] -> assert false
              | w :: tail ->
                stack := tail;
                on_stack.(w) <- false;
                comp.(w) <- c;
                ms := w :: !ms;
                if w = v then continue_popping := false
            done;
            members_rev := (c, !ms) :: !members_rev
          end;
          (match rest with
          | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if alive v && index.(v) = -1 then visit v
  done;
  let members = Array.make !comp_count [] in
  List.iter (fun (c, ms) -> members.(c) <- ms) !members_rev;
  { count = !comp_count; component = comp; members }

let compute g = compute_masked g ~alive:(fun _ -> true)

let condensation g r =
  let cg = Digraph.create r.count in
  Digraph.iter_edges
    (fun u v ->
      let cu = r.component.(u) and cv = r.component.(v) in
      if cu >= 0 && cv >= 0 && cu <> cv then Digraph.add_edge cg cu cv)
    g;
  cg

let is_trivial r =
  Array.for_all (fun ms -> match ms with [] | [ _ ] -> true | _ -> false)
    r.members
