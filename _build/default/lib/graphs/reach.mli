(** Reachability queries.

    The SCC coordination algorithm's guarantee is phrased in terms of
    [R(q)] — every query in an SCC reachable from [q]'s SCC.  These
    helpers compute such closures. *)

val from : Digraph.t -> int -> bool array
(** [from g s] marks every node reachable from [s] (including [s]). *)

val from_set : Digraph.t -> int list -> bool array

val reachable_list : Digraph.t -> int -> int list
(** Reachable nodes in ascending id order. *)

val descendants_per_node : Digraph.t -> bool array array
(** [descendants_per_node g] gives, for each node, its reachability mask.
    O(n * (n + m)); for test/validation use on small graphs. *)

val simple_path_count : Digraph.t -> int -> int -> max:int -> int
(** Number of distinct simple paths (no repeated nodes) from [s] to [t],
    counting the empty path when [s = t]; stops counting at [max] (the
    single-connectedness test only needs "0, 1, or more").  Exponential in
    the worst case — intended for the small query sets where Definition 6
    is checked. *)
