lib/graphs/digraph.ml: Array Format Fun Hashtbl List Printf
