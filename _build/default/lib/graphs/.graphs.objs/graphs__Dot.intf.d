lib/graphs/dot.mli: Digraph
