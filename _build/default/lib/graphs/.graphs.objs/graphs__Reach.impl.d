lib/graphs/reach.ml: Array Digraph List
