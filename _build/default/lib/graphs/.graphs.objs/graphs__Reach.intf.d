lib/graphs/reach.mli: Digraph
