lib/graphs/digraph.mli: Format
