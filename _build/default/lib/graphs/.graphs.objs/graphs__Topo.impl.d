lib/graphs/topo.ml: Array Digraph List Queue
