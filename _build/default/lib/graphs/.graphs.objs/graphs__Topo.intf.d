lib/graphs/topo.mli: Digraph
