lib/graphs/dot.ml: Buffer Digraph List Printf String
