let from_set g sources =
  let n = Digraph.node_count g in
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs (Digraph.successors g v)
    end
  in
  List.iter dfs sources;
  seen

let from g s = from_set g [ s ]

let reachable_list g s =
  let seen = from g s in
  List.filter (fun v -> seen.(v)) (Digraph.nodes g)

let descendants_per_node g =
  Array.init (Digraph.node_count g) (fun v -> from g v)

let simple_path_count g s t ~max:max_paths =
  let n = Digraph.node_count g in
  let on_path = Array.make n false in
  let count = ref 0 in
  let rec dfs v =
    if !count < max_paths then
      if v = t then incr count
      else begin
        on_path.(v) <- true;
        List.iter (fun w -> if not on_path.(w) then dfs w) (Digraph.successors g v);
        on_path.(v) <- false
      end
  in
  if n = 0 then 0
  else begin
    dfs s;
    !count
  end
