(** Strongly connected components and condensation.

    Tarjan's algorithm (iterative, so deep chain graphs — the paper's
    list-structure workload — cannot overflow the stack). *)

type result = {
  count : int;                (** number of components *)
  component : int array;     (** node id -> component id *)
  members : int list array;  (** component id -> its nodes *)
}

val compute : Digraph.t -> result
(** Component ids are numbered in reverse topological order of the
    condensation: if there is an edge from component [c1] to component
    [c2] (c1 needs c2), then [c1 > c2].  Hence iterating components in
    increasing id order processes every component after all components it
    depends on — exactly the order the SCC coordination algorithm wants. *)

val compute_masked : Digraph.t -> alive:(int -> bool) -> result
(** Like {!compute} but restricted to nodes satisfying [alive]; dead nodes
    get component [-1] and appear in no member list. *)

val condensation : Digraph.t -> result -> Digraph.t
(** The components graph G': one node per component, an edge [c1 -> c2]
    (c1 <> c2) whenever some edge of the original graph crosses from [c1]
    to [c2].  Acyclic by construction; self-loops are dropped. *)

val is_trivial : result -> bool
(** True when every component is a single node (the graph is a DAG except
    for self-loops). *)
