(** Graphviz DOT export, for inspecting coordination graphs. *)

val to_string :
  ?name:string ->
  ?label:(int -> string) ->
  ?highlight:(int -> bool) ->
  Digraph.t ->
  string
(** [to_string g] renders [g] in DOT syntax.  [label] names nodes
    (default: the node id), [highlight] fills the matching nodes — used to
    show the chosen coordinating set. *)

val to_file :
  ?name:string ->
  ?label:(int -> string) ->
  ?highlight:(int -> bool) ->
  Digraph.t ->
  path:string ->
  unit
