(** Deterministic pseudo-random numbers (splitmix64).

    All workload generators and property tests draw from this so every
    experiment is reproducible from a seed, independent of OCaml's
    [Random] state. *)

type t

val create : int -> t
(** [create seed]. *)

val copy : t -> t

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val pick_array : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k bound]: [k] distinct integers from [\[0, bound)],
    in random order.
    @raise Invalid_argument when [k > bound] or [k < 0]. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream. *)
