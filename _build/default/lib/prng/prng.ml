type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* Drop to 62 bits so the value fits OCaml's native positive int range. *)
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  x mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct t k bound =
  if k < 0 || k > bound then invalid_arg "Prng.sample_distinct";
  let a = Array.init bound Fun.id in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)

let split t = { state = next_int64 t }
