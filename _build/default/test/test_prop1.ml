(* Proposition 1, tested end-to-end: for a set of A-consistent queries,
   a coordinating set exists (general Definition-1 semantics, exhaustive
   brute-force search over the compiled entangled queries) if and only
   if one exists in which all tuples agree on the coordination
   attributes (what the Consistent Coordination Algorithm searches).

   Also covers the staged prepare/values/survivors API directly, and
   error propagation through the parallel driver. *)

open Relational
open Helpers
module Cquery = Coordination.Consistent_query

(* Random small instances over a 2-attribute schema: coordinate on the
   venue, the slot is personal. *)
let schema = Schema.make "S" [ "key"; "venue"; "slot" ]

let config =
  Cquery.make_config ~s_schema:schema ~friends:"F" ~answer:"R"
    ~coord_attrs:[ 0 ]

let venues = [ "V0"; "V1"; "V2" ]
let slots = [ "s0"; "s1" ]

let user i = Value.str (Printf.sprintf "u%d" i)

let random_instance seed =
  let rng = Prng.create seed in
  let users = 2 + Prng.int rng 2 in
  let db = Database.create () in
  let s = Database.create_table db schema in
  let rows = 1 + Prng.int rng 5 in
  for k = 0 to rows - 1 do
    ignore
      (Relation.insert s
         [|
           Value.Int k;
           Value.str (Prng.pick rng venues);
           Value.str (Prng.pick rng slots);
         |])
  done;
  let f = Database.create_table' db "F" [ "user"; "friend" ] in
  for i = 0 to users - 1 do
    for j = 0 to users - 1 do
      if i <> j && Prng.float rng < 0.6 then
        ignore (Relation.insert f [| user i; user j |])
    done
  done;
  let queries =
    List.init users (fun i ->
        let venue =
          if Prng.float rng < 0.4 then Cquery.Exact (Value.str (Prng.pick rng venues))
          else Cquery.Any
        in
        let slot =
          if Prng.float rng < 0.3 then Cquery.Exact (Value.str (Prng.pick rng slots))
          else Cquery.Any
        in
        let partner =
          if Prng.float rng < 0.5 then Cquery.Any_friend
          else Cquery.Named (user (Prng.int rng users))
        in
        Cquery.make config ~user:(user i) ~own:[ venue; slot ]
          ~partners:[ partner ])
  in
  (db, queries)

let prop1_agreement seed =
  let db, queries = random_instance seed in
  let compiled = Cquery.compile_set config queries in
  let brute_exists =
    Coordination.Brute.exists_coordinating_set db compiled
  in
  match Coordination.Consistent.solve db config queries with
  | Error _ -> false
  | Ok outcome ->
    let consistent_exists = outcome.members <> [] in
    (* Proposition 1: same-value search loses nothing. *)
    brute_exists = consistent_exists
    &&
    (* And when something is found, it validates in the general
       semantics via the compiled queries. *)
    (match Coordination.Consistent.to_solution db outcome with
    | None -> not consistent_exists
    | Some (compiled, solution) ->
      Entangled.Solution.validate db compiled solution = Ok ())

let test_staged_api () =
  let db, queries = Workload.Movies.make () in
  match Coordination.Consistent.prepare db Workload.Movies.config queries with
  | Error e -> Alcotest.failf "prepare: %a" Coordination.Consistent.pp_error e
  | Ok p ->
    let values = Coordination.Consistent.values p in
    Alcotest.(check int) "three candidate cinemas" 3 (List.length values);
    let survivors name =
      fst (Coordination.Consistent.survivors p (Tuple.make [ Value.str name ]))
    in
    Alcotest.(check (list int)) "cinemark cleans to empty" [] (survivors "Cinemark");
    Alcotest.(check int) "regal keeps three" 3 (List.length (survivors "Regal"));
    (* survivors is pure: same input, same answer. *)
    Alcotest.(check (list int)) "pure" (survivors "Regal") (survivors "Regal")

let test_parallel_error_propagation () =
  let db, queries = Workload.Movies.make () in
  match
    Coordination.Parallel.solve db Workload.Movies.config
      (queries @ [ List.hd queries ])
  with
  | Error (Coordination.Consistent.Duplicate_user u) ->
    Alcotest.check value_t "chris" Workload.Movies.chris u
  | _ -> Alcotest.fail "duplicate user must propagate"

let test_gupta_unification_clash () =
  (* Safe and unique, but the mutual unification clashes on a repeated
     variable: the baseline must report Unification_failed. *)
  let db = flights_db () in
  let queries =
    [
      Entangled.Query.make ~name:"a"
        ~post:[ atom "R" [ var "x"; var "x" ] ]
        ~head:[ atom "Q" [ var "x" ] ]
        [ atom "F" [ var "x"; cs "Zurich" ] ];
      Entangled.Query.make ~name:"b"
        ~post:[ atom "Q" [ ci 101 ] ]
        ~head:[ atom "R" [ ci 101; ci 102 ] ]
        [];
    ]
  in
  match Coordination.Gupta.solve db queries with
  | Error (Coordination.Gupta.Unification_failed _) -> ()
  | Error e ->
    Alcotest.failf "wrong error: %a"
      (Coordination.Gupta.pp_error (Entangled.Query.rename_set queries))
      e
  | Ok _ -> Alcotest.fail "must clash"

let suite =
  [
    Alcotest.test_case "staged prepare/values/survivors" `Quick test_staged_api;
    Alcotest.test_case "parallel propagates errors" `Quick
      test_parallel_error_propagation;
    Alcotest.test_case "gupta reports unification clashes" `Quick
      test_gupta_unification_clash;
    qtest ~count:120 "proposition 1: existence matches brute force"
      QCheck.(int_range 0 1_000_000)
      prop1_agreement;
  ]
