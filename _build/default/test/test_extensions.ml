(* Extensions beyond the paper's core algorithms: the online engine
   (Section 7 future work / Section 6.1 system flow), the parallel value
   loop (Section 6.2 closing remark), the generalized partner kinds of
   Section 5, and SQL rendering of combined queries. *)

open Relational
open Entangled
open Helpers
module Cquery = Coordination.Consistent_query

(* ------------------------------ Online ---------------------------- *)

let chain_query i ~last =
  Query.make
    ~name:(Printf.sprintf "u%d" i)
    ~post:
      (if last then []
       else [ atom "R" [ cs (Printf.sprintf "u%d" (i + 1)); var "y" ] ])
    ~head:[ atom "R" [ cs (Printf.sprintf "u%d" i); var "x" ] ]
    [ atom "F" [ var "x"; cs "Zurich" ] ]

let test_online_pair () =
  let db = flights_db () in
  let engine = Coordination.Online.create db in
  (* Gwyneth needs Chris; alone she pends. *)
  let gwyneth =
    Query.make ~name:"gwyneth"
      ~post:[ atom "R" [ cs "Chris"; var "x" ] ]
      ~head:[ atom "R" [ cs "Gwyneth"; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ]
  in
  let chris =
    Query.make ~name:"chris" ~post:[]
      ~head:[ atom "R" [ cs "Chris"; var "y" ] ]
      [ atom "F" [ var "y"; cs "Zurich" ] ]
  in
  (match Coordination.Online.submit engine gwyneth with
  | Pending -> ()
  | _ -> Alcotest.fail "gwyneth must pend");
  Alcotest.(check int) "one pending" 1 (Coordination.Online.pending_count engine);
  (match Coordination.Online.submit engine chris with
  | Coordinated c ->
    Alcotest.(check (list string)) "both leave" [ "gwyneth"; "chris" ]
      (List.map (fun q -> q.Query.name) c.queries)
  | _ -> Alcotest.fail "chris triggers coordination");
  Alcotest.(check int) "pool empty" 0 (Coordination.Online.pending_count engine);
  Alcotest.(check int) "two satisfied" 2
    (Coordination.Online.total_coordinated engine)

let test_online_unrelated_component_untouched () =
  let db = flights_db () in
  let engine = Coordination.Online.create db in
  (* A pending query with an unsatisfiable body... *)
  let stuck =
    Query.make ~name:"stuck"
      ~post:[ atom "R" [ cs "nobody"; var "z" ] ]
      ~head:[ atom "R" [ cs "stuck"; var "z" ] ]
      [ atom "F" [ var "z"; cs "Nowhere" ] ]
  in
  ignore (Coordination.Online.submit engine stuck);
  (* ...does not block an unrelated self-sufficient query. *)
  let solo =
    Query.make ~name:"solo" ~post:[]
      ~head:[ atom "R" [ cs "solo"; var "x" ] ]
      [ atom "F" [ var "x"; cs "Paris" ] ]
  in
  (match Coordination.Online.submit engine solo with
  | Coordinated c ->
    Alcotest.(check (list string)) "solo fires" [ "solo" ]
      (List.map (fun q -> q.Query.name) c.queries)
  | _ -> Alcotest.fail "solo coordinates alone");
  Alcotest.(check (list string)) "stuck remains" [ "stuck" ]
    (List.map (fun q -> q.Query.name) (Coordination.Online.pending engine))

let test_online_rejects_unsafe () =
  let db = flights_db () in
  let engine = Coordination.Online.create db in
  let provider name =
    Query.make ~name ~post:[]
      ~head:[ atom "R" [ cs "C"; var "y" ] ]
      [ atom "F" [ var "y"; cs "Nowhere" ] ]
  in
  ignore (Coordination.Online.submit engine (provider "c1"));
  ignore (Coordination.Online.submit engine (provider "c2"));
  let wanter =
    Query.make ~name:"p"
      ~post:[ atom "R" [ cs "C"; var "x" ] ]
      ~head:[ atom "R" [ cs "P"; var "x" ] ]
      [ atom "F" [ var "x"; var "d" ] ]
  in
  (match Coordination.Online.submit engine wanter with
  | Rejected_unsafe _ -> ()
  | _ -> Alcotest.fail "two candidate heads: unsafe, must reject");
  (* The rejected query was not admitted. *)
  Alcotest.(check int) "pool unchanged" 2
    (Coordination.Online.pending_count engine)

let test_online_deferred_flush () =
  let db = flights_db () in
  let engine = Coordination.Online.create ~eager:false db in
  let n = 6 in
  List.iteri
    (fun i q ->
      match Coordination.Online.submit engine q with
      | Pending -> ()
      | _ -> Alcotest.failf "deferred submit %d must pend" i)
    (List.init n (fun i -> chain_query i ~last:(i = n - 1)));
  Alcotest.(check int) "all pending" n (Coordination.Online.pending_count engine);
  let fired = Coordination.Online.flush engine in
  Alcotest.(check int) "one component fires" 1 (List.length fired);
  Alcotest.(check int) "whole chain" n
    (List.length (List.hd fired).Coordination.Online.queries);
  Alcotest.(check int) "pool drained" 0 (Coordination.Online.pending_count engine)

let test_online_stream_matches_batch_components () =
  (* Streaming the chain front-to-back: nothing fires until the last
     (post-free) query arrives, then the whole chain fires at once. *)
  let db = flights_db () in
  let engine = Coordination.Online.create db in
  let n = 5 in
  let queries = List.init n (fun i -> chain_query i ~last:(i = n - 1)) in
  List.iteri
    (fun i q ->
      match Coordination.Online.submit engine q with
      | Pending when i < n - 1 -> ()
      | Coordinated c when i = n - 1 ->
        Alcotest.(check int) "whole chain at the end" n (List.length c.queries)
      | _ -> Alcotest.failf "unexpected outcome at %d" i)
    queries

let test_online_flush_multiple_components () =
  let db = flights_db () in
  let engine = Coordination.Online.create ~eager:false db in
  (* Two independent pairs plus one doomed query. *)
  let pair tag dest =
    [
      Query.make
        ~name:(tag ^ "_a")
        ~post:[ atom "R" [ cs (tag ^ "B"); var "x" ] ]
        ~head:[ atom "R" [ cs (tag ^ "A"); var "x" ] ]
        [ atom "F" [ var "x"; cs dest ] ];
      Query.make
        ~name:(tag ^ "_b")
        ~post:[ atom "R" [ cs (tag ^ "A"); var "y" ] ]
        ~head:[ atom "R" [ cs (tag ^ "B"); var "y" ] ]
        [ atom "F" [ var "y"; cs dest ] ];
    ]
  in
  let doomed =
    Query.make ~name:"doomed"
      ~post:[ atom "R" [ cs "nobody"; var "z" ] ]
      ~head:[ atom "R" [ cs "doomed"; var "z" ] ]
      [ atom "F" [ var "z"; cs "Zurich" ] ]
  in
  List.iter
    (fun q -> ignore (Coordination.Online.submit engine q))
    (pair "p" "Zurich" @ [ doomed ] @ pair "q" "Paris");
  let fired = Coordination.Online.flush engine in
  Alcotest.(check int) "two sets fire" 2 (List.length fired);
  Alcotest.(check (list string)) "doomed remains" [ "doomed" ]
    (List.map
       (fun q -> q.Query.name)
       (Coordination.Online.pending engine));
  (* Flushing again is a no-op. *)
  Alcotest.(check int) "idempotent" 0
    (List.length (Coordination.Online.flush engine))

let test_deep_chain_stack_safety () =
  (* Graph construction, Tarjan and the condensation must be stack-safe
     on a 2000-deep chain (iterative Tarjan; Figure 6's regime)... *)
  let db, queries = Workload.Listgen.make ~rows:2_000 ~topics:5 ~seed:9 2_000 in
  (match Coordination.Scc_algo.solve ~graph_only:true db queries with
  | Error _ -> Alcotest.fail "safe"
  | Ok outcome ->
    Alcotest.(check int) "no probes in graph phase" 0 outcome.stats.db_probes);
  (* ...and a full solve (including the evaluator's recursion over a
     400-atom combined query) completes at depth 400. *)
  let db, queries = Workload.Listgen.make ~rows:2_000 ~topics:5 ~seed:9 400 in
  match Coordination.Scc_algo.solve db queries with
  | Error _ -> Alcotest.fail "safe"
  | Ok outcome -> (
    Alcotest.(check int) "all suffixes probed" 400 outcome.stats.db_probes;
    match outcome.solution with
    | Some s -> Alcotest.(check int) "full chain" 400 (Entangled.Solution.size s)
    | None -> Alcotest.fail "chain coordinates")

let test_online_consumes_inventory () =
  (* One Zurich flight only; the first pair books it, the second pair
     finds it gone. *)
  let db = Database.create () in
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  Database.insert db "F" [ vi 101; vs "Zurich" ];
  let engine = Coordination.Online.create ~consume:true db in
  let pair tag =
    [
      Query.make
        ~name:(tag ^ "_a")
        ~post:[ atom "R" [ cs (tag ^ "B"); var "x" ] ]
        ~head:[ atom "R" [ cs (tag ^ "A"); var "x" ] ]
        [ atom "F" [ var "x"; cs "Zurich" ] ];
      Query.make
        ~name:(tag ^ "_b")
        ~post:[ atom "R" [ cs (tag ^ "A"); var "y" ] ]
        ~head:[ atom "R" [ cs (tag ^ "B"); var "y" ] ]
        [ atom "F" [ var "y"; cs "Zurich" ] ];
    ]
  in
  (match List.map (Coordination.Online.submit engine) (pair "p") with
  | [ Pending; Coordinated c ] ->
    Alcotest.(check int) "first pair books" 2 (List.length c.queries)
  | _ -> Alcotest.fail "first pair fires on second submit");
  Alcotest.(check int) "flight consumed" 0
    (Relation.cardinal (Database.relation db "F"));
  (match List.map (Coordination.Online.submit engine) (pair "q") with
  | [ Pending; Pending ] -> ()
  | _ -> Alcotest.fail "second pair must find no inventory");
  Alcotest.(check int) "second pair stuck" 2
    (Coordination.Online.pending_count engine)

(* ----------------------------- Parallel --------------------------- *)

let test_parallel_matches_sequential () =
  let db, queries = Workload.Flights.make_worst_case ~rows:60 ~users:12 in
  let seq =
    match Coordination.Consistent.solve db Workload.Flights.config queries with
    | Ok o -> o
    | Error _ -> Alcotest.fail "sequential solves"
  in
  List.iter
    (fun domains ->
      match
        Coordination.Parallel.solve ~domains db Workload.Flights.config queries
      with
      | Error _ -> Alcotest.fail "parallel solves"
      | Ok par ->
        Alcotest.(check (option tuple_t))
          (Printf.sprintf "same value (%d domains)" domains)
          seq.chosen_value par.chosen_value;
        Alcotest.(check (list int))
          (Printf.sprintf "same members (%d domains)" domains)
          seq.members par.members;
        Alcotest.(check int)
          (Printf.sprintf "same candidate count (%d domains)" domains)
          (List.length seq.candidates)
          (List.length par.candidates))
    [ 1; 2; 4; 7 ]

let test_parallel_movies () =
  let db, queries = Workload.Movies.make () in
  match Coordination.Parallel.solve ~domains:3 db Workload.Movies.config queries with
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
  | Ok outcome -> (
    Alcotest.(check int) "three members" 3 (List.length outcome.members);
    match Coordination.Consistent.to_solution db outcome with
    | None -> Alcotest.fail "has solution"
    | Some (compiled, solution) -> check_validates db compiled solution)

(* --------------------- Generalized partners ----------------------- *)

let movies_config = Workload.Movies.config

let test_k_friends () =
  let db, _ = Workload.Movies.make () in
  (* Jonny insists on TWO friends at the same cinema. *)
  let q user movie k =
    Cquery.make movies_config ~user
      ~own:[ Cquery.Any; Cquery.Exact (vs movie) ]
      ~partners:[ Cquery.K_friends k ]
  in
  let queries =
    [
      q Workload.Movies.chris "Hugo" 1;
      q Workload.Movies.jonny "Hugo" 2;
      q Workload.Movies.will "Hugo" 1;
    ]
  in
  (* Jonny's friends are Chris and Will; both watch Hugo, so all three
     coordinate (Hugo plays at Regal, AMC, Cinemark together only via
     per-cinema availability: all three share Regal/AMC/Cinemark options
     -> everyone survives everywhere Hugo plays). *)
  match Coordination.Consistent.solve db movies_config queries with
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
  | Ok outcome ->
    Alcotest.(check int) "all three" 3 (List.length outcome.members);
    (* K_friends is not expressible as an entangled query. *)
    Alcotest.(check bool) "not expressible" true
      (Coordination.Consistent.to_solution db outcome = None)

let test_k_friends_insufficient () =
  let db, _ = Workload.Movies.make () in
  (* Guy demands two friends but only Jonny is his friend among the
     submitters: he must be cleaned away.  (Will names Jonny directly —
     Will's own friends, Chris and Guy, are both unavailable.) *)
  let hugo user partners =
    Cquery.make movies_config ~user
      ~own:[ Cquery.Any; Cquery.Exact (vs "Hugo") ]
      ~partners
  in
  let queries =
    [
      hugo Workload.Movies.guy [ Cquery.K_friends 2 ];
      hugo Workload.Movies.jonny [ Cquery.Any_friend ];
      hugo Workload.Movies.will [ Cquery.Named Workload.Movies.jonny ];
    ]
  in
  match Coordination.Consistent.solve db movies_config queries with
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
  | Ok outcome ->
    let users =
      List.map
        (fun i -> outcome.queries.(i).Cquery.user)
        outcome.members
    in
    Alcotest.(check bool) "guy excluded" false
      (List.mem Workload.Movies.guy users);
    Alcotest.(check int) "jonny+will" 2 (List.length users)

let test_bad_k_rejected () =
  let db, _ = Workload.Movies.make () in
  let bad =
    Cquery.make movies_config ~user:Workload.Movies.guy
      ~own:[ Cquery.Any; Cquery.Any ]
      ~partners:[ Cquery.K_friends 0 ]
  in
  match Coordination.Consistent.solve db movies_config [ bad ] with
  | Error (Coordination.Consistent.Bad_k (u, 0)) ->
    Alcotest.check value_t "guy" Workload.Movies.guy u
  | _ -> Alcotest.fail "k=0 rejected"

let test_any_from_second_relation () =
  let db, _ = Workload.Movies.make () in
  (* A separate Colleagues relation: Guy's colleague is Will. *)
  let colleagues = Database.create_table' db "Colleagues" [ "user"; "peer" ] in
  ignore
    (Relation.insert colleagues [| Workload.Movies.guy; Workload.Movies.will |]);
  let hugo user partners =
    Cquery.make movies_config ~user
      ~own:[ Cquery.Any; Cquery.Exact (vs "Hugo") ]
      ~partners
  in
  let queries =
    [
      hugo Workload.Movies.guy [ Cquery.Any_from "Colleagues" ];
      hugo Workload.Movies.will [ Cquery.Any_friend ];
      hugo Workload.Movies.chris [ Cquery.Any_friend ];
    ]
  in
  match Coordination.Consistent.solve db movies_config queries with
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
  | Ok outcome ->
    Alcotest.(check int) "all three (guy via colleague will)" 3
      (List.length outcome.members);
    (* Expressible: cross-validate in the general formalism. *)
    (match Coordination.Consistent.to_solution db outcome with
    | None -> Alcotest.fail "expressible"
    | Some (compiled, solution) -> check_validates db compiled solution)

let test_any_from_missing_relation () =
  let db, _ = Workload.Movies.make () in
  let q =
    Cquery.make movies_config ~user:Workload.Movies.guy
      ~own:[ Cquery.Any; Cquery.Any ]
      ~partners:[ Cquery.Any_from "Nope" ]
  in
  match Coordination.Consistent.solve db movies_config [ q ] with
  | Error (Coordination.Consistent.Missing_relation "Nope") -> ()
  | _ -> Alcotest.fail "missing relation reported"

(* ------------------------------ Sqlgen ---------------------------- *)

let test_sqlgen_select () =
  let db = flights_db () in
  let q =
    Cq.make
      [ atom "F" [ var "x"; cs "Zurich" ]; atom "H" [ var "h"; var "loc" ] ]
  in
  let sql = Sqlgen.select db q [ "x"; "h" ] in
  let expected =
    "SELECT t0.fid AS x, t1.hid AS h\n\
     FROM F AS t0, H AS t1\n\
     WHERE t0.dest = 'Zurich'"
  in
  Alcotest.(check string) "select" expected sql

let test_sqlgen_join_predicate () =
  let db = flights_db () in
  (* Shared variable d joins the two tables. *)
  let q =
    Cq.make [ atom "F" [ var "x"; var "d" ]; atom "H" [ var "h"; var "d" ] ]
  in
  let sql = Sqlgen.select db q [ "d" ] in
  let expected =
    "SELECT t0.dest AS d\nFROM F AS t0, H AS t1\nWHERE t0.dest = t1.loc"
  in
  Alcotest.(check string) "join" expected sql

let test_sqlgen_exists_and_literals () =
  let db = flights_db () in
  let q = Cq.make [ atom "F" [ ci 101; cs "Zur'ich" ] ] in
  let sql = Sqlgen.exists db q in
  let expected =
    "SELECT 1\nFROM F AS t0\nWHERE t0.fid = 101\n  AND t0.dest = 'Zur''ich'\nLIMIT 1"
  in
  Alcotest.(check string) "exists" expected sql;
  Alcotest.(check string) "empty query" "SELECT 1" (Sqlgen.exists db (Cq.make []));
  Alcotest.(check string) "bool literal" "TRUE" (Sqlgen.literal (Value.bool true))

let test_sqlgen_errors () =
  let db = flights_db () in
  let raises f =
    try
      ignore (f ());
      false
    with Sqlgen.Cannot_render _ -> true
  in
  Alcotest.(check bool) "unknown relation" true
    (raises (fun () -> Sqlgen.select db (Cq.make [ atom "Zed" [ var "x" ] ]) [ "x" ]));
  Alcotest.(check bool) "arity" true
    (raises (fun () -> Sqlgen.select db (Cq.make [ atom "F" [ var "x" ] ]) [ "x" ]));
  Alcotest.(check bool) "unknown projection" true
    (raises (fun () ->
         Sqlgen.select db (Cq.make [ atom "F" [ var "x"; var "d" ] ]) [ "zz" ]))

let test_sqlgen_combined_query () =
  (* The combined query of the Figure-1 Chris+Guy component renders as
     one SQL statement, as in the paper's implementation. *)
  let db = Database.create () in
  let queries = Query.rename_set (figure1_queries db) in
  let graph = Coordination_graph.build queries in
  match Combine.unify_set graph ~members:[ 0; 1 ] with
  | Error _ -> Alcotest.fail "unifies"
  | Ok subst ->
    let body = Combine.combined_body graph ~members:[ 0; 1 ] subst in
    let sql = Sqlgen.exists db body in
    Alcotest.(check bool) "renders and joins four atoms" true
      (String.length sql > 0
      && List.length (String.split_on_char ',' sql) >= 4)

let suite =
  [
    Alcotest.test_case "online: pair fires on second submit" `Quick
      test_online_pair;
    Alcotest.test_case "online: unrelated component untouched" `Quick
      test_online_unrelated_component_untouched;
    Alcotest.test_case "online: unsafe submission rejected" `Quick
      test_online_rejects_unsafe;
    Alcotest.test_case "online: deferred + flush" `Quick test_online_deferred_flush;
    Alcotest.test_case "online: stream fires when chain completes" `Quick
      test_online_stream_matches_batch_components;
    Alcotest.test_case "online: consumes inventory" `Quick
      test_online_consumes_inventory;
    Alcotest.test_case "online: flush across components" `Quick
      test_online_flush_multiple_components;
    Alcotest.test_case "deep chain stack safety (n=2000)" `Slow
      test_deep_chain_stack_safety;
    Alcotest.test_case "parallel = sequential (1/2/4/7 domains)" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "parallel: movies example validates" `Quick
      test_parallel_movies;
    Alcotest.test_case "k-friends coordination" `Quick test_k_friends;
    Alcotest.test_case "k-friends insufficient" `Quick test_k_friends_insufficient;
    Alcotest.test_case "k=0 rejected" `Quick test_bad_k_rejected;
    Alcotest.test_case "partner from second relation" `Quick
      test_any_from_second_relation;
    Alcotest.test_case "second relation missing" `Quick
      test_any_from_missing_relation;
    Alcotest.test_case "sqlgen select" `Quick test_sqlgen_select;
    Alcotest.test_case "sqlgen join predicate" `Quick test_sqlgen_join_predicate;
    Alcotest.test_case "sqlgen exists + literals" `Quick
      test_sqlgen_exists_and_literals;
    Alcotest.test_case "sqlgen errors" `Quick test_sqlgen_errors;
    Alcotest.test_case "sqlgen combined query" `Quick test_sqlgen_combined_query;
    qtest ~count:30 "parallel equals sequential on random instances"
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Prng.create seed in
        let rows = 5 + Prng.int rng 20 in
        let users = 2 + Prng.int rng 8 in
        let db = Database.create () in
        ignore (Workload.Flights.install_flights db ~rows);
        ignore (Workload.Flights.install_complete_friends db ~users);
        let queries =
          Workload.Flights.constrained_queries rng ~users ~rows
            ~constrain_fraction:0.4
        in
        let seq = Coordination.Consistent.solve db Workload.Flights.config queries in
        let par =
          Coordination.Parallel.solve ~domains:3 db Workload.Flights.config queries
        in
        match (seq, par) with
        | Ok s, Ok p ->
          s.chosen_value = p.chosen_value && s.members = p.members
          && List.length s.candidates = List.length p.candidates
        | _ -> false);
  ]
