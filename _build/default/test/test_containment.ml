(* Conjunctive-query containment and core minimization, plus the
   minimize-before-grounding optimizer pass. *)

open Relational
open Entangled
open Helpers

let q atoms = Cq.make atoms

let test_homomorphism_basic () =
  (* F(x, y) maps into F(x1, Paris). *)
  let src = q [ atom "F" [ var "x"; var "y" ] ] in
  let dst = q [ atom "F" [ var "x1"; cs "Paris" ] ] in
  (match Containment.homomorphism src dst with
  | None -> Alcotest.fail "exists"
  | Some h ->
    Alcotest.check term_t "x -> x1" (var "x1") (List.assoc "x" h);
    Alcotest.check term_t "y -> Paris" (cs "Paris") (List.assoc "y" h));
  (* Constants only map to themselves. *)
  Alcotest.(check bool) "const mismatch" true
    (Containment.homomorphism
       (q [ atom "F" [ cs "Rome"; var "y" ] ])
       (q [ atom "F" [ var "x"; cs "Paris" ] ])
    = None)

let test_homomorphism_join_structure () =
  (* A path of length 2 maps onto a self-loop, not vice versa. *)
  let path = q [ atom "E" [ var "a"; var "b" ]; atom "E" [ var "b"; var "c" ] ] in
  let loop = q [ atom "E" [ var "z"; var "z" ] ] in
  Alcotest.(check bool) "path -> loop" true
    (Option.is_some (Containment.homomorphism path loop));
  Alcotest.(check bool) "loop -> path" false
    (Option.is_some (Containment.homomorphism loop path))

let test_containment_and_equivalence () =
  let narrow = q [ atom "F" [ var "x"; cs "Paris" ] ] in
  let broad = q [ atom "F" [ var "x"; var "d" ] ] in
  (* Asking for Paris is more restrictive: narrow ⊆ broad. *)
  Alcotest.(check bool) "narrow in broad" true
    (Containment.contained_in narrow broad);
  Alcotest.(check bool) "broad not in narrow" false
    (Containment.contained_in broad narrow);
  let dup = q [ atom "F" [ var "x"; cs "Paris" ]; atom "F" [ var "y"; cs "Paris" ] ] in
  Alcotest.(check bool) "duplicate equivalent" true
    (Containment.equivalent narrow dup)

let test_minimize_figure1 () =
  (* The Chris+Guy combined body: F(x1,x), H(x2,x), F(x1,Paris),
     H(x2,Paris) has the 2-atom core F(x1,Paris), H(x2,Paris). *)
  let body =
    q
      [
        atom "F" [ var "x1"; var "x" ];
        atom "H" [ var "x2"; var "x" ];
        atom "F" [ var "x1"; cs "Paris" ];
        atom "H" [ var "x2"; cs "Paris" ];
      ]
  in
  let core = Containment.minimize body in
  Alcotest.(check int) "two atoms" 2 (List.length core.Cq.atoms);
  Alcotest.(check bool) "still equivalent" true (Containment.equivalent body core);
  (* Protecting x forbids collapsing it into Paris. *)
  let protected_core = Containment.minimize ~protect:[ "x" ] body in
  Alcotest.(check bool) "x survives" true
    (List.mem "x" (Cq.variables protected_core))

let test_minimize_retraction_recovers () =
  let body =
    q [ atom "F" [ var "x1"; var "x" ]; atom "F" [ var "x1"; cs "Paris" ] ]
  in
  let core, retraction = Containment.minimize_with_retraction body in
  Alcotest.(check int) "core is one atom" 1 (List.length core.Cq.atoms);
  (* Every original variable is mapped into the core. *)
  let core_vars = Cq.variables core in
  List.iter
    (fun x ->
      match List.assoc x retraction with
      | Term.Var y ->
        Alcotest.(check bool) ("var " ^ x ^ " lands in core") true
          (List.mem y core_vars)
      | Term.Const _ -> ())
    (Cq.variables body);
  Alcotest.check term_t "x collapsed to Paris" (cs "Paris")
    (List.assoc "x" retraction)

let test_minimize_idempotent_and_empty () =
  let body = q [ atom "F" [ var "x"; var "y" ] ] in
  Alcotest.(check bool) "already minimal" true
    (List.length (Containment.minimize body).Cq.atoms = 1);
  Alcotest.(check int) "empty stays empty" 0
    (List.length (Containment.minimize (q [])).Cq.atoms)

let test_ground_with_minimization () =
  let db = flights_db () in
  let input =
    [
      Query.make ~name:"c"
        ~post:[ atom "R" [ cs "G"; var "x1" ] ]
        ~head:[ atom "R" [ cs "C"; var "x1" ] ]
        [ atom "F" [ var "x1"; var "x" ] ];
      Query.make ~name:"g"
        ~post:[ atom "R" [ cs "C"; var "y1" ] ]
        ~head:[ atom "R" [ cs "G"; var "y1" ] ]
        [ atom "F" [ var "y1"; cs "Paris" ] ];
    ]
  in
  let run minimize =
    match Coordination.Scc_algo.solve ~minimize db input with
    | Ok { solution = Some s; queries; _ } ->
      check_validates db queries s;
      s
    | _ -> Alcotest.fail "solves"
  in
  let plain = run false and minimized = run true in
  Alcotest.(check (list int)) "same members" plain.members minimized.members

(* Randomized: minimization preserves the full answer set. *)
let gen_query =
  QCheck.Gen.(
    let gen_term =
      oneof
        [
          map (fun i -> Term.Var (Printf.sprintf "v%d" i)) (int_range 0 3);
          map Term.int (int_range 0 2);
        ]
    in
    let gen_atom =
      oneof
        [
          map (fun (a, b) -> { Cq.rel = "R"; args = [| a; b |] }) (pair gen_term gen_term);
          map (fun a -> { Cq.rel = "S"; args = [| a |] }) gen_term;
        ]
    in
    let* atoms = list_size (int_range 1 5) gen_atom in
    return (Cq.make atoms))

let query_arb = QCheck.make ~print:(Format.asprintf "%a" Cq.pp) gen_query

let small_db () =
  let db = Database.create () in
  ignore (Database.create_table' db "R" [ "a"; "b" ]);
  ignore (Database.create_table' db "S" [ "a" ]);
  List.iter
    (fun (a, b) -> Database.insert db "R" [ vi a; vi b ])
    [ (0, 0); (0, 1); (1, 2); (2, 2) ];
  List.iter (fun a -> Database.insert db "S" [ vi a ]) [ 0; 2 ];
  db

let suite =
  [
    Alcotest.test_case "homomorphism basics" `Quick test_homomorphism_basic;
    Alcotest.test_case "homomorphism join structure" `Quick
      test_homomorphism_join_structure;
    Alcotest.test_case "containment and equivalence" `Quick
      test_containment_and_equivalence;
    Alcotest.test_case "minimize figure-1 combined body" `Quick
      test_minimize_figure1;
    Alcotest.test_case "retraction recovers dropped variables" `Quick
      test_minimize_retraction_recovers;
    Alcotest.test_case "minimize idempotent/empty" `Quick
      test_minimize_idempotent_and_empty;
    Alcotest.test_case "scc grounding with minimization" `Quick
      test_ground_with_minimization;
    qtest ~count:300 "core is equivalent and no larger" query_arb (fun body ->
        let core = Containment.minimize body in
        List.length core.Cq.atoms <= List.length body.Cq.atoms
        && Containment.equivalent body core);
    qtest ~count:300 "core satisfiability agrees on a concrete instance"
      query_arb (fun body ->
        let db = small_db () in
        let core = Containment.minimize body in
        Eval.satisfiable db body = Eval.satisfiable db core);
    qtest ~count:300 "retraction maps witnesses correctly" query_arb
      (fun body ->
        let db = small_db () in
        let core, retraction = Containment.minimize_with_retraction body in
        match Eval.find_first db core with
        | None -> not (Eval.satisfiable db body)
        | Some core_val ->
          (* Extend through the retraction and check every body atom. *)
          let full =
            List.fold_left
              (fun acc (x, t) ->
                match t with
                | Term.Const v -> Eval.Binding.add x v acc
                | Term.Var y -> (
                  match Eval.Binding.find_opt y core_val with
                  | Some v -> Eval.Binding.add x v acc
                  | None -> acc))
              Eval.Binding.empty retraction
          in
          List.for_all
            (fun (a : Cq.atom) ->
              let tuple =
                Array.map
                  (function
                    | Term.Const v -> Some v
                    | Term.Var x -> Eval.Binding.find_opt x full)
                  a.args
              in
              Array.for_all Option.is_some tuple
              && Relation.mem
                   (Database.relation db a.rel)
                   (Array.map Option.get tuple))
            body.Cq.atoms);
    qtest ~count:200 "contained_in is reflexive and transitive-ish"
      QCheck.(pair query_arb query_arb)
      (fun (a, b) ->
        Containment.contained_in a a
        &&
        (* containment implies answer-set inclusion on the instance *)
        let db = small_db () in
        (not (Containment.contained_in a b))
        || (not (Eval.satisfiable db a))
        || Eval.satisfiable db b);
  ]
