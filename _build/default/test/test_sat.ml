(* SAT substrate and the hardness reductions: DPLL ground truth, and
   closing the loop of Theorems 1, 2 and Appendix B on random formulas. *)

open Helpers

let test_cnf_eval () =
  let f = Sat.Cnf.make ~num_vars:3 [ [ 1; -2; 3 ]; [ 2; -3; -1 ] ] in
  let a = [| false; true; true; false |] in
  Alcotest.(check bool) "eval" true (Sat.Cnf.eval f a);
  let a2 = [| false; false; true; true |] in
  (* clause2: x2 | !x3 | !x1 -> false|false|true = true; clause1:
     x1|!x2|x3 -> false|true|true = true *)
  Alcotest.(check bool) "eval2" true (Sat.Cnf.eval f a2);
  Alcotest.(check bool) "three-cnf" true (Sat.Cnf.is_three_cnf f);
  Alcotest.(check bool) "not three-cnf" false
    (Sat.Cnf.is_three_cnf (Sat.Cnf.make ~num_vars:2 [ [ 1; 2 ] ]));
  Alcotest.check_raises "zero literal" (Invalid_argument "Cnf.lit: zero literal")
    (fun () -> ignore (Sat.Cnf.lit 0))

let test_dpll_basic () =
  Alcotest.(check bool) "trivial" true
    (Sat.Dpll.satisfiable (Sat.Cnf.make ~num_vars:1 []));
  Alcotest.(check bool) "unit" true
    (Sat.Dpll.satisfiable (Sat.Cnf.make ~num_vars:1 [ [ 1 ] ]));
  Alcotest.(check bool) "contradiction" false
    (Sat.Dpll.satisfiable (Sat.Cnf.make ~num_vars:1 [ [ 1 ]; [ -1 ] ]));
  let f = Sat.Cnf.make ~num_vars:2 [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ] ] in
  (match Sat.Dpll.solve f with
  | Some a -> Alcotest.(check bool) "model" true (Sat.Cnf.eval f a)
  | None -> Alcotest.fail "satisfiable");
  Alcotest.(check int) "model count" 1 (Sat.Dpll.count_models f)

let full_unsat_3cnf =
  Sat.Cnf.make ~num_vars:3
    [
      [ 1; 2; 3 ]; [ 1; 2; -3 ]; [ 1; -2; 3 ]; [ 1; -2; -3 ];
      [ -1; 2; 3 ]; [ -1; 2; -3 ]; [ -1; -2; 3 ]; [ -1; -2; -3 ];
    ]

let test_dpll_unsat_3cnf () =
  Alcotest.(check bool) "all 8 clauses unsat" false
    (Sat.Dpll.satisfiable full_unsat_3cnf);
  Alcotest.(check int) "zero models" 0 (Sat.Dpll.count_models full_unsat_3cnf)

let formula_gen =
  QCheck.Gen.(
    let* num_vars = int_range 3 5 in
    let* num_clauses = int_range 1 8 in
    let* seed = int_range 0 1_000_000 in
    let rng = Prng.create seed in
    return (Sat.Gen.random_3sat rng ~num_vars ~num_clauses))

let formula_arb = QCheck.make ~print:(Format.asprintf "%a" Sat.Cnf.pp) formula_gen

(* Small formulas so the Theorem-1 instance stays under the brute-force
   query limit: 1 + m + (#polarities present) <= 1 + 4 + 8 = 13. *)
let small_formula_gen =
  QCheck.Gen.(
    let* num_vars = int_range 3 4 in
    let* num_clauses = int_range 1 4 in
    let* seed = int_range 0 1_000_000 in
    let rng = Prng.create seed in
    return (Sat.Gen.random_3sat rng ~num_vars ~num_clauses))

let small_formula_arb =
  QCheck.make ~print:(Format.asprintf "%a" Sat.Cnf.pp) small_formula_gen

let test_gen_planted () =
  let rng = Prng.create 42 in
  for _ = 1 to 20 do
    let f, planted = Sat.Gen.planted_3sat rng ~num_vars:8 ~num_clauses:30 in
    Alcotest.(check bool) "planted satisfies" true (Sat.Cnf.eval f planted);
    Alcotest.(check bool) "dpll agrees" true (Sat.Dpll.satisfiable f)
  done

let test_theorem1_figure_formula () =
  (* Figure 9's formula through the Theorem 1 reduction. *)
  let f = Sat.Cnf.make ~num_vars:4 [ [ 1; -2; 3 ]; [ 2; -3; -4 ] ] in
  let inst = Sat.Reduce.to_entangled f in
  (match Coordination.Brute.maximum inst.db inst.queries with
  | None -> Alcotest.fail "satisfiable formula must coordinate"
  | Some s ->
    let a = Sat.Reduce.decode_entangled f inst s.members in
    Alcotest.(check bool) "decoded assignment satisfies" true (Sat.Cnf.eval f a));
  (* The unsatisfiable 8-clause formula must not coordinate. *)
  let bad = Sat.Reduce.to_entangled full_unsat_3cnf in
  Alcotest.(check bool) "unsat: no coordinating set" false
    (Coordination.Brute.exists_coordinating_set bad.db bad.queries)

let test_theorem2_figure_formula () =
  let f = Sat.Cnf.make ~num_vars:4 [ [ 1; -2; 3 ]; [ 2; -3; -4 ] ] in
  let inst = Sat.Reduce.to_entangled_max f in
  Alcotest.(check int) "target" 6 inst.target;
  (* The gadget set is safe. *)
  let graph = Entangled.Coordination_graph.build inst.mqueries in
  Alcotest.(check bool) "safe" true (Entangled.Safety.is_safe graph);
  (match Coordination.Brute.maximum inst.mdb inst.mqueries with
  | None -> Alcotest.fail "val queries alone coordinate"
  | Some s ->
    Alcotest.(check int) "max = k+m" inst.target (Entangled.Solution.size s);
    let a = Sat.Reduce.decode_entangled_max f inst s.members in
    Alcotest.(check bool) "decoded satisfies" true (Sat.Cnf.eval f a));
  Alcotest.(check int) "analytical max agrees" inst.target
    (Sat.Reduce.max_coordinating_size f);
  (* Unsatisfiable: analytical maximum falls short of the target. *)
  let bad = Sat.Reduce.to_entangled_max full_unsat_3cnf in
  Alcotest.(check bool) "unsat: max < k+m" true
    (Sat.Reduce.max_coordinating_size full_unsat_3cnf < bad.target)

let test_appendix_b () =
  (* Mixed-attribute consistent queries re-encode 3SAT (Appendix B). *)
  let f = Sat.Cnf.make ~num_vars:3 [ [ 1; -2; 3 ] ] in
  let inst = Sat.Reduce.to_mixed_consistent f in
  (* The set is unsafe — that is the point. *)
  let graph = Entangled.Coordination_graph.build inst.queries in
  Alcotest.(check bool) "unsafe" false (Entangled.Safety.is_safe graph);
  (match Coordination.Brute.maximum inst.db inst.queries with
  | None -> Alcotest.fail "satisfiable formula must coordinate"
  | Some s ->
    let a = Sat.Reduce.decode_mixed f inst s.members in
    Alcotest.(check bool) "decoded satisfies" true (Sat.Cnf.eval f a))

let suite =
  [
    Alcotest.test_case "cnf eval" `Quick test_cnf_eval;
    Alcotest.test_case "dpll basics" `Quick test_dpll_basic;
    Alcotest.test_case "dpll full unsat 3-cnf" `Quick test_dpll_unsat_3cnf;
    Alcotest.test_case "planted instances satisfiable" `Quick test_gen_planted;
    Alcotest.test_case "theorem 1 on figure formula" `Quick
      test_theorem1_figure_formula;
    Alcotest.test_case "theorem 2 on figure formula" `Quick
      test_theorem2_figure_formula;
    Alcotest.test_case "appendix B reduction" `Quick test_appendix_b;
    qtest ~count:150 "dpll agrees with exhaustive model counting" formula_arb
      (fun f -> Sat.Dpll.satisfiable f = (Sat.Dpll.count_models f > 0));
    qtest ~count:150 "dpll models actually satisfy" formula_arb (fun f ->
        match Sat.Dpll.solve f with
        | None -> true
        | Some a -> Sat.Cnf.eval f a);
    qtest ~count:25 "theorem 1: satisfiable iff coordinating set exists"
      small_formula_arb (fun f ->
        let inst = Sat.Reduce.to_entangled f in
        Array.length inst.queries > Coordination.Brute.max_queries
        || Coordination.Brute.exists_coordinating_set inst.db inst.queries
           = Sat.Dpll.satisfiable f);
    qtest ~count:15 "theorem 2: max size = k+m iff satisfiable"
      QCheck.(
        make
          ~print:(Format.asprintf "%a" Sat.Cnf.pp)
          Gen.(
            let* seed = int_range 0 1_000_000 in
            let rng = Prng.create seed in
            let* num_clauses = int_range 1 3 in
            return (Sat.Gen.random_3sat rng ~num_vars:4 ~num_clauses)))
      (fun f ->
        let inst = Sat.Reduce.to_entangled_max f in
        let brute_max =
          match Coordination.Brute.maximum inst.mdb inst.mqueries with
          | None -> 0
          | Some s -> Entangled.Solution.size s
        in
        brute_max = Sat.Reduce.max_coordinating_size f
        && (brute_max = inst.target) = Sat.Dpll.satisfiable f);
    qtest ~count:10 "appendix B: satisfiable iff coordinating set exists"
      QCheck.(
        make
          ~print:(Format.asprintf "%a" Sat.Cnf.pp)
          Gen.(
            let* seed = int_range 0 1_000_000 in
            let rng = Prng.create seed in
            return (Sat.Gen.random_3sat rng ~num_vars:3 ~num_clauses:2)))
      (fun f ->
        let inst = Sat.Reduce.to_mixed_consistent f in
        Array.length inst.queries > Coordination.Brute.max_queries
        || Coordination.Brute.exists_coordinating_set inst.db inst.queries
           = Sat.Dpll.satisfiable f);
  ]
