test/helpers.ml: Alcotest Array Cq Database Entangled List QCheck QCheck_alcotest Relational Term Tuple Value
