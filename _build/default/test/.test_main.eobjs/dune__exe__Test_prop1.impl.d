test/test_prop1.ml: Alcotest Coordination Database Entangled Helpers List Printf Prng QCheck Relation Relational Schema Tuple Value Workload
