test/test_eval.ml: Alcotest Cq Database Eval Format Helpers List Printf QCheck Relational String Term Tuple Value
