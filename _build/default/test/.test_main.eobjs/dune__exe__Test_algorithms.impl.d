test/test_algorithms.ml: Alcotest Array Coordination Cq Database Entangled Format Fun Helpers List Printf Prng QCheck Query Relation Relational Solution String Tuple Value Workload
