test/test_containment.ml: Alcotest Array Containment Coordination Cq Database Entangled Eval Format Helpers List Option Printf QCheck Query Relation Relational Term
