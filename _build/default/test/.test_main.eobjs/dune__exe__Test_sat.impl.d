test/test_sat.ml: Alcotest Array Coordination Entangled Format Gen Helpers Prng QCheck Sat
