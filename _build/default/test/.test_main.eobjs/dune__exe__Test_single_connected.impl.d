test/test_single_connected.ml: Alcotest Coordination Coordination_graph Entangled Helpers List Option Printf Query Safety Solution
