test/test_extensions.ml: Alcotest Array Combine Coordination Coordination_graph Cq Database Entangled Helpers List Printf Prng QCheck Query Relation Relational Sqlgen String Value Workload
