test/test_relational.ml: Alcotest Cq Csv_io Database Eval Filename Helpers List QCheck Relation Relational Schema Sys Tuple Value Vec
