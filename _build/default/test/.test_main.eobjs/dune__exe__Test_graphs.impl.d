test/test_graphs.ml: Alcotest Array Digraph Dot Graphs Helpers List Printf QCheck Reach Scc String Topo
