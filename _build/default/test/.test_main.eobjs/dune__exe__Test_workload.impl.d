test/test_workload.ml: Alcotest Array Coordination Database Entangled Eval Fun Graphs Helpers List Prng QCheck Relation Relational Tuple Value Workload
