(* The coordination algorithms: Gupta baseline, the SCC Coordination
   Algorithm (Section 4), the Consistent Coordination Algorithm
   (Section 5), single-connected sets (Theorem 3), and the brute-force
   ground truth — with cross-checks between them. *)

open Relational
open Entangled
open Helpers
module Cquery = Coordination.Consistent_query

let mk ?name ~post ~head body = Query.make ?name ~post ~head body

(* A safe+unique pair: A and B must share a Zurich flight. *)
let pair_queries () =
  [
    mk ~name:"a"
      ~post:[ atom "R" [ cs "B"; var "x" ] ]
      ~head:[ atom "R" [ cs "A"; var "x" ] ]
      [ atom "F" [ var "x"; cs "Zurich" ] ];
    mk ~name:"b"
      ~post:[ atom "R" [ cs "A"; var "y" ] ]
      ~head:[ atom "R" [ cs "B"; var "y" ] ]
      [ atom "F" [ var "y"; cs "Zurich" ] ];
  ]

(* ------------------------------ Gupta ----------------------------- *)

let test_gupta_success () =
  let db = flights_db () in
  match Coordination.Gupta.solve db (pair_queries ()) with
  | Error _ -> Alcotest.fail "safe+unique"
  | Ok outcome -> (
    match outcome.solution with
    | None -> Alcotest.fail "coordinating set exists"
    | Some s ->
      Alcotest.(check int) "both queries" 2 (Solution.size s);
      check_validates db outcome.queries s;
      Alcotest.(check int) "single probe" 1 outcome.stats.db_probes)

let test_gupta_no_flight () =
  let db = Database.create () in
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  Database.insert db "F" [ vi 1; vs "Paris" ];
  match Coordination.Gupta.solve db (pair_queries ()) with
  | Error _ -> Alcotest.fail "still safe+unique"
  | Ok outcome -> Alcotest.(check bool) "no solution" true (outcome.solution = None)

let test_gupta_rejects_non_unique () =
  let db = flights_db () in
  let queries =
    [
      mk ~name:"g"
        ~post:[ atom "R" [ cs "C"; var "x" ] ]
        ~head:[ atom "R" [ cs "G"; var "x" ] ]
        [ atom "F" [ var "x"; cs "Zurich" ] ];
      mk ~name:"c" ~post:[] ~head:[ atom "R" [ cs "C"; var "y" ] ]
        [ atom "F" [ var "y"; cs "Zurich" ] ];
    ]
  in
  match Coordination.Gupta.solve db queries with
  | Error Coordination.Gupta.Not_unique -> ()
  | _ -> Alcotest.fail "must reject non-unique sets"

let test_gupta_rejects_unsafe () =
  let db = flights_db () in
  let queries =
    [
      mk ~name:"p"
        ~post:[ atom "R" [ cs "C"; var "x" ] ]
        ~head:[ atom "R" [ cs "P"; var "x" ] ]
        [ atom "F" [ var "x"; var "d" ] ];
      mk ~name:"c1" ~post:[ atom "R" [ cs "P"; var "u" ] ]
        ~head:[ atom "R" [ cs "C"; var "u" ] ]
        [ atom "F" [ var "u"; var "d1" ] ];
      mk ~name:"c2" ~post:[ atom "R" [ cs "P"; var "v" ] ]
        ~head:[ atom "R" [ cs "C"; var "v" ] ]
        [ atom "F" [ var "v"; var "d2" ] ];
    ]
  in
  match Coordination.Gupta.solve db queries with
  | Error (Coordination.Gupta.Not_safe _) -> ()
  | _ -> Alcotest.fail "must reject unsafe sets"

let test_gupta_empty () =
  let db = flights_db () in
  match Coordination.Gupta.solve db [] with
  | Ok outcome -> Alcotest.(check bool) "no solution" true (outcome.solution = None)
  | Error _ -> Alcotest.fail "empty input is fine"

(* ---------------------------- SCC algo ---------------------------- *)

let test_scc_figure1 () =
  let db = Database.create () in
  let input = figure1_queries db in
  match Coordination.Scc_algo.solve db input with
  | Error _ -> Alcotest.fail "figure 1 is safe"
  | Ok outcome -> (
    match outcome.solution with
    | None -> Alcotest.fail "chris+guy coordinate"
    | Some s ->
      Alcotest.(check (list string)) "chris and guy" [ "qC"; "qG" ]
        (Solution.member_names outcome.queries s);
      check_validates db outcome.queries s;
      (* Only the {qC,qG} candidate grounds; qJ and qW components fail. *)
      Alcotest.(check int) "one successful candidate" 1
        (List.length outcome.candidates))

let test_scc_on_safe_unique_matches_gupta () =
  let db = flights_db () in
  let input = pair_queries () in
  match (Coordination.Gupta.solve db input, Coordination.Scc_algo.solve db input) with
  | Ok g, Ok s -> (
    match (g.solution, s.solution) with
    | Some gs, Some ss ->
      Alcotest.(check (list int)) "same members" gs.members ss.members
    | _ -> Alcotest.fail "both must solve")
  | _ -> Alcotest.fail "both must accept"

let test_scc_chain_suffixes () =
  (* A 5-chain where query 2's body is unsatisfiable: only suffixes
     {3,4} and {4} survive; the algorithm picks {3,4}. *)
  let db = flights_db () in
  let dest i = if i = 2 then "Nowhere" else "Zurich" in
  let input =
    List.init 5 (fun i ->
        let post =
          if i < 4 then
            [ atom "R" [ cs (Printf.sprintf "u%d" (i + 1)); var "y" ] ]
          else []
        in
        mk
          ~name:(Printf.sprintf "u%d" i)
          ~post
          ~head:[ atom "R" [ cs (Printf.sprintf "u%d" i); var "x" ] ]
          [ atom "F" [ var "x"; cs (dest i) ] ])
  in
  match Coordination.Scc_algo.solve db input with
  | Error _ -> Alcotest.fail "safe"
  | Ok outcome -> (
    Alcotest.(check int) "two candidates" 2 (List.length outcome.candidates);
    match outcome.solution with
    | Some s ->
      Alcotest.(check (list string)) "largest suffix" [ "u3"; "u4" ]
        (Solution.member_names outcome.queries s);
      check_validates db outcome.queries s
    | None -> Alcotest.fail "suffix coordinates")

let test_scc_preprocess_equivalent () =
  (* With or without preprocessing, same solution; preprocessing never
     issues more probes. *)
  let db = flights_db () in
  let input =
    [
      mk ~name:"dead"
        ~post:[ atom "Z" [ ci 1 ] ]
        ~head:[ atom "R" [ cs "D"; var "x" ] ]
        [ atom "F" [ var "x"; cs "Zurich" ] ];
      mk ~name:"alive" ~post:[] ~head:[ atom "R" [ cs "A"; var "y" ] ]
        [ atom "F" [ var "y"; cs "Paris" ] ];
    ]
  in
  let run preprocess =
    match Coordination.Scc_algo.solve ~preprocess db input with
    | Ok o -> o
    | Error _ -> Alcotest.fail "safe"
  in
  let with_pre = run true and without_pre = run false in
  (match (with_pre.solution, without_pre.solution) with
  | Some a, Some b -> Alcotest.(check (list int)) "same members" a.members b.members
  | _ -> Alcotest.fail "both solve");
  Alcotest.(check bool) "preprocessing saves probes" true
    (with_pre.stats.db_probes <= without_pre.stats.db_probes)

let test_scc_selection () =
  let db = flights_db () in
  (* Two independent queries; Largest picks either (size 1), a Preferred
     criterion can force the Paris one. *)
  let input =
    [
      mk ~name:"zurich" ~post:[] ~head:[ atom "R" [ cs "A"; var "x" ] ]
        [ atom "F" [ var "x"; cs "Zurich" ] ];
      mk ~name:"paris" ~post:[] ~head:[ atom "R" [ cs "B"; var "y" ] ]
        [ atom "F" [ var "y"; cs "Paris" ] ];
    ]
  in
  let prefer_paris queries (c : Coordination.Scc_algo.candidate) =
    if List.exists (fun i -> queries.(i).Query.name = "paris") c.covered then 1
    else 0
  in
  match
    Coordination.Scc_algo.solve ~selection:(Preferred prefer_paris) db input
  with
  | Ok { solution = Some s; queries; _ } ->
    Alcotest.(check (list string)) "paris preferred" [ "paris" ]
      (Solution.member_names queries s)
  | _ -> Alcotest.fail "solves"

let test_scc_unsafe_rejected () =
  let db = flights_db () in
  let input =
    [
      mk ~name:"p"
        ~post:[ atom "R" [ cs "C"; var "x" ] ]
        ~head:[ atom "R" [ cs "P"; var "x" ] ]
        [ atom "F" [ var "x"; var "d" ] ];
      mk ~name:"c1" ~post:[] ~head:[ atom "R" [ cs "C"; var "u" ] ]
        [ atom "F" [ var "u"; var "d1" ] ];
      mk ~name:"c2" ~post:[] ~head:[ atom "R" [ cs "C"; var "v" ] ]
        [ atom "F" [ var "v"; var "d2" ] ];
    ]
  in
  match Coordination.Scc_algo.solve db input with
  | Error (Coordination.Scc_algo.Not_safe ws) ->
    Alcotest.(check (list (pair int int))) "witness" [ (0, 0) ] ws
  | Ok _ -> Alcotest.fail "unsafe must be rejected"

let test_scc_unsafe_dead_candidate_ok () =
  (* A second candidate head exists only on a query with an unsatisfiable
     postcondition; preprocessing removes it, making the set safe. *)
  let db = flights_db () in
  let input =
    [
      mk ~name:"p"
        ~post:[ atom "R" [ cs "C"; var "x" ] ]
        ~head:[ atom "R" [ cs "P"; var "x" ] ]
        [ atom "F" [ var "x"; var "d" ] ];
      mk ~name:"real" ~post:[] ~head:[ atom "R" [ cs "C"; var "u" ] ]
        [ atom "F" [ var "u"; var "d1" ] ];
      mk ~name:"ghost"
        ~post:[ atom "Never" [ ci 1 ] ]
        ~head:[ atom "R" [ cs "C"; var "v" ] ]
        [ atom "F" [ var "v"; var "d2" ] ];
    ]
  in
  match Coordination.Scc_algo.solve db input with
  | Ok { solution = Some s; queries; _ } ->
    Alcotest.(check (list string)) "p + real" [ "p"; "real" ]
      (Solution.member_names queries s)
  | Ok { solution = None; _ } -> Alcotest.fail "solution exists"
  | Error _ -> Alcotest.fail "pruning restores safety"

(* ----------------------- Consistent algorithm --------------------- *)

let test_movies_example () =
  let db, queries = Workload.Movies.make () in
  match Coordination.Consistent.solve db Workload.Movies.config queries with
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
  | Ok outcome ->
    (* Paper's option lists. *)
    let cinemas i =
      List.map (fun t -> Value.to_string t.(0)) (Tuple.Set.elements outcome.options.(i))
    in
    Alcotest.(check (list string)) "V(qc)" [ "Regal" ] (cinemas 0);
    Alcotest.(check (list string)) "V(qg)" [ "AMC" ] (cinemas 1);
    Alcotest.(check (list string)) "V(qj)" [ "AMC"; "Cinemark"; "Regal" ] (cinemas 2);
    Alcotest.(check (list string)) "V(qw)" [ "AMC"; "Cinemark"; "Regal" ] (cinemas 3);
    (* Paper: Cinemark cleans to empty, Regal keeps {Chris, Jonny, Will}. *)
    let size_at name =
      List.assoc (Tuple.make [ vs name ]) outcome.candidates
    in
    Alcotest.(check int) "Cinemark empty" 0 (size_at "Cinemark");
    Alcotest.(check int) "Regal three" 3 (size_at "Regal");
    Alcotest.(check int) "AMC three" 3 (size_at "AMC");
    Alcotest.(check int) "solution size" 3 (List.length outcome.members);
    (* Cross-validate in the general formalism. *)
    (match Coordination.Consistent.to_solution db outcome with
    | None -> Alcotest.fail "has solution"
    | Some (compiled, solution) -> check_validates db compiled solution)

let test_consistent_regal_members () =
  (* Pin the choice to Regal by removing AMC's Hugo screening: then the
     only size-3 value is Regal with exactly Chris, Jonny, Will. *)
  let db, queries = Workload.Movies.make () in
  let m = Database.relation db "M" in
  ignore m;
  (* Rebuild without the AMC Hugo row. *)
  let db2 = Database.create () in
  let m2 = Database.create_table db2 Workload.Movies.movies_schema in
  List.iter
    (fun (id, cinema, movie) ->
      ignore
        (Relation.insert m2 [| vi id; vs cinema; vs movie |]))
    [
      (1, "Regal", "Contagion");
      (2, "Regal", "Hugo");
      (3, "AMC", "Project X");
      (5, "Cinemark", "Hugo");
    ];
  let c2 = Database.create_table' db2 "C" [ "user"; "friend" ] in
  Relation.iter (fun t -> ignore (Relation.insert c2 t)) (Database.relation db "C");
  match Coordination.Consistent.solve db2 Workload.Movies.config queries with
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
  | Ok outcome ->
    (match outcome.chosen_value with
    | Some v -> Alcotest.check value_t "regal chosen" (vs "Regal") v.(0)
    | None -> Alcotest.fail "solution exists");
    let members =
      List.map
        (fun i -> Value.to_string outcome.queries.(i).Cquery.user)
        outcome.members
    in
    Alcotest.(check (list string)) "chris jonny will" [ "Chris"; "Jonny"; "Will" ]
      members

let test_consistent_duplicate_user () =
  let db, queries = Workload.Movies.make () in
  match
    Coordination.Consistent.solve db Workload.Movies.config
      (queries @ [ List.hd queries ])
  with
  | Error (Coordination.Consistent.Duplicate_user u) ->
    Alcotest.check value_t "chris twice" Workload.Movies.chris u
  | _ -> Alcotest.fail "duplicate user rejected"

let test_consistent_missing_relation () =
  let db = Database.create () in
  let _, queries = Workload.Movies.make () in
  match Coordination.Consistent.solve db Workload.Movies.config queries with
  | Error (Coordination.Consistent.Missing_relation "M") -> ()
  | _ -> Alcotest.fail "missing relation reported"

let test_consistent_no_solution () =
  (* Nobody's movie plays anywhere: empty option lists, no solution. *)
  let db = Database.create () in
  ignore (Database.create_table db Workload.Movies.movies_schema);
  ignore (Database.create_table' db "C" [ "user"; "friend" ]);
  let _, queries = Workload.Movies.make () in
  match Coordination.Consistent.solve db Workload.Movies.config queries with
  | Ok outcome ->
    Alcotest.(check bool) "no value" true (outcome.chosen_value = None);
    Alcotest.(check (list int)) "no members" [] outcome.members
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e

let test_consistent_first_selection () =
  let db, queries = Workload.Movies.make () in
  match
    Coordination.Consistent.solve ~selection:`First db Workload.Movies.config queries
  with
  | Ok outcome ->
    Alcotest.(check bool) "found something" true (outcome.chosen_value <> None);
    (* `First stops early: fewer candidates examined than values exist. *)
    Alcotest.(check bool) "stopped early" true
      (List.length outcome.candidates <= 3)
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e

let test_consistent_named_partner_chain () =
  (* Chris named Will; remove Will's query: Chris must be cleaned away
     even where his own movie plays. *)
  let db, queries = Workload.Movies.make () in
  let queries' = List.filteri (fun i _ -> i <> 3) queries in
  match Coordination.Consistent.solve db Workload.Movies.config queries' with
  | Ok outcome ->
    let members =
      List.map
        (fun i -> Value.to_string outcome.queries.(i).Cquery.user)
        outcome.members
    in
    Alcotest.(check bool) "chris excluded" true
      (not (List.mem "Chris" members))
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e

let test_consistent_queries_are_consistent () =
  let _, queries = Workload.Movies.make () in
  List.iter
    (fun q ->
      Alcotest.(check bool) "Definition 9" true
        (Cquery.is_consistent Workload.Movies.config q))
    queries

let test_definitions_7_8_9 () =
  let config = Workload.Movies.config in
  (* A raw query that coordinates on nothing is not A-consistent. *)
  let raw =
    Cquery.make_raw config ~user:(vs "U")
      ~own:[ Cquery.Any; Cquery.Any ]
      ~partners:[ (Cquery.Any_friend, [ Cquery.Free; Cquery.Free ]) ]
  in
  Alcotest.(check bool) "not coordinating on cinema" false
    (Cquery.is_coordinating config ~attrs:[ 0 ] raw);
  Alcotest.(check bool) "non-coordinating on cinema" true
    (Cquery.is_non_coordinating config ~attrs:[ 0 ] raw);
  Alcotest.(check bool) "not consistent" false (Cquery.is_consistent config raw);
  (* Fixed equal to own Exact counts as coordinating (same constant). *)
  let fixed =
    Cquery.make_raw config ~user:(vs "U")
      ~own:[ Cquery.Exact (vs "Regal"); Cquery.Any ]
      ~partners:[ (Cquery.Any_friend, [ Cquery.Fixed (vs "Regal"); Cquery.Free ]) ]
  in
  Alcotest.(check bool) "fixed = exact coordinates" true
    (Cquery.is_coordinating config ~attrs:[ 0 ] fixed);
  Alcotest.(check bool) "consistent" true (Cquery.is_consistent config fixed)

let test_compiled_form_shape () =
  (* The compiled general query has the Section 5 shape. *)
  let config = Workload.Movies.config in
  let q =
    Cquery.make config ~user:(vs "U")
      ~own:[ Cquery.Any; Cquery.Exact (vs "Hugo") ]
      ~partners:[ Cquery.Any_friend; Cquery.Named (vs "W") ]
  in
  let e = Cquery.to_entangled config q in
  Alcotest.(check int) "two posts" 2 (List.length e.Query.post);
  Alcotest.(check int) "one head" 1 (List.length e.Query.head);
  (* body: own M atom + friend atom + 2 partner M atoms *)
  Alcotest.(check int) "body atoms" 4 (List.length e.Query.body.Cq.atoms);
  Alcotest.(check bool) "range restricted" true (Query.range_restricted e)

(* -------------------------- Brute force --------------------------- *)

let test_brute_matches_paper_pair () =
  let db = flights_db () in
  let queries = Query.rename_set (pair_queries ()) in
  Alcotest.(check bool) "exists" true
    (Coordination.Brute.exists_coordinating_set db queries);
  match Coordination.Brute.maximum db queries with
  | Some s ->
    Alcotest.(check int) "both" 2 (Solution.size s);
    check_validates db queries s
  | None -> Alcotest.fail "exists"

let test_brute_subsets () =
  let db = flights_db () in
  let queries =
    Query.rename_set
      [
        mk ~name:"g"
          ~post:[ atom "R" [ cs "C"; var "x" ] ]
          ~head:[ atom "R" [ cs "G"; var "x" ] ]
          [ atom "F" [ var "x"; cs "Zurich" ] ];
        mk ~name:"c" ~post:[] ~head:[ atom "R" [ cs "C"; var "y" ] ]
          [ atom "F" [ var "y"; cs "Zurich" ] ];
      ]
  in
  let subsets = Coordination.Brute.all_coordinating_subsets db queries in
  Alcotest.(check (list (list int))) "chris alone, or both" [ [ 1 ]; [ 0; 1 ] ]
    subsets

let test_brute_guard () =
  let db = flights_db () in
  let many =
    Query.rename_set
      (List.init 21 (fun i ->
           mk ~name:(Printf.sprintf "q%d" i) ~post:[]
             ~head:[ atom "R" [ ci i ] ] []))
  in
  let raised =
    try
      ignore (Coordination.Brute.exists_coordinating_set db many);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "guarded" true raised

(* SCC algorithm's solution is always among brute force's subsets, and
   brute force finds something iff the SCC algorithm does (on safe sets
   where every query's posts are satisfiable within the whole set). *)
let random_safe_instance seed =
  (* Random chain/forest-shaped safe sets over the flights db. *)
  let rng = Prng.create seed in
  let n = 2 + Prng.int rng 5 in
  let dests = [ "Zurich"; "Paris"; "Athens"; "Nowhere" ] in
  let input =
    List.init n (fun i ->
        let post =
          if i < n - 1 && Prng.bool rng then
            [ atom "R" [ cs (Printf.sprintf "u%d" (i + 1)); var "y" ] ]
          else []
        in
        mk
          ~name:(Printf.sprintf "u%d" i)
          ~post
          ~head:[ atom "R" [ cs (Printf.sprintf "u%d" i); var "x" ] ]
          [ atom "F" [ var "x"; cs (Prng.pick rng dests) ] ])
  in
  input

(* Arbitrary random safe instances, cycles included: every post names a
   specific user and every user offers one head, so any digraph of
   "wants" is safe.  Posts share the owner's flight variable half the
   time, which makes unification propagate constraints through cycles. *)
let random_cyclic_instance seed =
  let rng = Prng.create seed in
  let n = 2 + Prng.int rng 4 in
  let dests = [ "Zurich"; "Paris"; "Athens"; "Nowhere" ] in
  List.init n (fun i ->
      let targets =
        List.filter
          (fun j -> j <> i && Prng.float rng < 0.4)
          (List.init n Fun.id)
      in
      let post =
        List.mapi
          (fun k j ->
            let term =
              if Prng.bool rng then var "x" (* same flight as mine *)
              else var (Printf.sprintf "y%d" k)
            in
            atom "R" [ cs (Printf.sprintf "u%d" j); term ])
          targets
      in
      mk
        ~name:(Printf.sprintf "u%d" i)
        ~post
        ~head:[ atom "R" [ cs (Printf.sprintf "u%d" i); var "x" ] ]
        [ atom "F" [ var "x"; cs (Prng.pick rng dests) ] ])

let suite =
  [
    Alcotest.test_case "gupta success" `Quick test_gupta_success;
    Alcotest.test_case "gupta no flight" `Quick test_gupta_no_flight;
    Alcotest.test_case "gupta rejects non-unique" `Quick test_gupta_rejects_non_unique;
    Alcotest.test_case "gupta rejects unsafe" `Quick test_gupta_rejects_unsafe;
    Alcotest.test_case "gupta empty input" `Quick test_gupta_empty;
    Alcotest.test_case "scc: figure 1" `Quick test_scc_figure1;
    Alcotest.test_case "scc = gupta on safe+unique" `Quick
      test_scc_on_safe_unique_matches_gupta;
    Alcotest.test_case "scc: chain suffixes" `Quick test_scc_chain_suffixes;
    Alcotest.test_case "scc: preprocessing equivalent" `Quick
      test_scc_preprocess_equivalent;
    Alcotest.test_case "scc: custom selection" `Quick test_scc_selection;
    Alcotest.test_case "scc: unsafe rejected" `Quick test_scc_unsafe_rejected;
    Alcotest.test_case "scc: pruning restores safety" `Quick
      test_scc_unsafe_dead_candidate_ok;
    Alcotest.test_case "explain trace on figure 1" `Quick (fun () ->
        let db = Database.create () in
        let input = figure1_queries db in
        match Coordination.Explain.trace db input with
        | Error _ -> Alcotest.fail "figure 1 is safe"
        | Ok report ->
          let kinds =
            List.map
              (function
                | Coordination.Scc_algo.Pruned _ -> "pruned"
                | Coordination.Scc_algo.Skipped _ -> "skipped"
                | Coordination.Scc_algo.Unify_failed _ -> "unify-failed"
                | Coordination.Scc_algo.Probed { witness = Some _; _ } -> "sat"
                | Coordination.Scc_algo.Probed { witness = None; _ } -> "unsat")
              report.events
          in
          (* {qC,qG} grounds; {qJ,...} probes and fails; {qW,...} is
             skipped because qJ failed. *)
          Alcotest.(check (list string)) "event sequence"
            [ "sat"; "unsat"; "skipped" ] kinds;
          (* The report renders (including SQL) without raising. *)
          let rendered =
            Format.asprintf "%a" (Coordination.Explain.pp db) report
          in
          let contains s sub =
            let n = String.length s and m = String.length sub in
            let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
            loop 0
          in
          Alcotest.(check bool) "mentions SELECT" true (contains rendered "SELECT");
          Alcotest.(check bool) "mentions the solution" true
            (contains rendered "qC, qG"));
    Alcotest.test_case "consistent: movies example (Section 5)" `Quick
      test_movies_example;
    Alcotest.test_case "consistent: regal members" `Quick
      test_consistent_regal_members;
    Alcotest.test_case "consistent: duplicate user" `Quick
      test_consistent_duplicate_user;
    Alcotest.test_case "consistent: missing relation" `Quick
      test_consistent_missing_relation;
    Alcotest.test_case "consistent: no solution" `Quick test_consistent_no_solution;
    Alcotest.test_case "consistent: first selection" `Quick
      test_consistent_first_selection;
    Alcotest.test_case "consistent: named partner chain" `Quick
      test_consistent_named_partner_chain;
    Alcotest.test_case "consistent: queries satisfy Definition 9" `Quick
      test_consistent_queries_are_consistent;
    Alcotest.test_case "definitions 7/8/9" `Quick test_definitions_7_8_9;
    Alcotest.test_case "compiled form shape" `Quick test_compiled_form_shape;
    Alcotest.test_case "brute: pair" `Quick test_brute_matches_paper_pair;
    Alcotest.test_case "brute: all subsets" `Quick test_brute_subsets;
    Alcotest.test_case "brute: size guard" `Quick test_brute_guard;
    qtest ~count:60 "scc solution is a brute-force coordinating subset"
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let db = flights_db () in
        let input = random_safe_instance seed in
        match Coordination.Scc_algo.solve db input with
        | Error _ -> false
        | Ok outcome -> (
          let queries = outcome.queries in
          match outcome.solution with
          | None ->
            (* Brute force must agree that nothing coordinates. *)
            not (Coordination.Brute.exists_coordinating_set db queries)
          | Some s ->
            Solution.validate db queries s = Ok ()
            && List.mem s.members
                 (Coordination.Brute.all_coordinating_subsets db queries)));
    qtest ~count:150 "scc agrees with brute force on cyclic safe instances"
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let db = flights_db () in
        let input = random_cyclic_instance seed in
        match Coordination.Scc_algo.solve db input with
        | Error _ -> false (* these instances are safe by construction *)
        | Ok outcome -> (
          let queries = outcome.queries in
          match outcome.solution with
          | None -> not (Coordination.Brute.exists_coordinating_set db queries)
          | Some s ->
            Solution.validate db queries s = Ok ()
            && List.mem s.members
                 (Coordination.Brute.all_coordinating_subsets db queries)));
    qtest ~count:60 "scc solutions always validate (scale-free workloads)"
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let db, input, _ = Workload.Netgen.make ~rows:500 ~topics:5 ~seed 12 in
        match Coordination.Scc_algo.solve db input with
        | Error _ -> false
        | Ok outcome -> (
          match outcome.solution with
          | None -> true
          | Some s -> Solution.validate db outcome.queries s = Ok ()));
    qtest ~count:40 "consistent solutions validate via compilation"
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Prng.create seed in
        let rows = 5 + Prng.int rng 10 in
        let users = 2 + Prng.int rng 5 in
        let db = Database.create () in
        ignore (Workload.Flights.install_flights db ~rows);
        ignore (Workload.Flights.install_complete_friends db ~users);
        let queries =
          Workload.Flights.constrained_queries rng ~users ~rows
            ~constrain_fraction:0.5
        in
        match Coordination.Consistent.solve db Workload.Flights.config queries with
        | Error _ -> false
        | Ok outcome -> (
          match Coordination.Consistent.to_solution db outcome with
          | None -> outcome.members = []
          | Some (compiled, solution) ->
            Solution.validate db compiled solution = Ok ()));
  ]
