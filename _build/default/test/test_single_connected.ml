(* Single-connected query sets (Definition 6, Theorem 3). *)

open Entangled
open Helpers

let mk = Query.make

(* An unsafe but single-connected set: the root can coordinate with
   either of two providers, only one of which has a satisfiable body. *)
let choice_queries () =
  [
    mk ~name:"root"
      ~post:[ atom "R" [ cs "kid"; var "x" ] ]
      ~head:[ atom "R" [ cs "root"; var "x" ] ]
      [ atom "F" [ var "x"; var "d" ] ];
    mk ~name:"kid_zurich" ~post:[]
      ~head:[ atom "R" [ cs "kid"; var "y" ] ]
      [ atom "F" [ var "y"; cs "Zurich" ] ];
    mk ~name:"kid_rome" ~post:[]
      ~head:[ atom "R" [ cs "kid"; var "z" ] ]
      [ atom "F" [ var "z"; cs "Rome" ] ];
  ]

let test_check_accepts () =
  let queries = Query.rename_set (choice_queries ()) in
  let g = Coordination_graph.build queries in
  Alcotest.(check bool) "unsafe" false (Safety.is_safe g);
  Alcotest.(check bool) "single-connected" true
    (Coordination.Single_connected.check g = Ok ())

let test_check_rejects_two_posts () =
  let queries =
    Query.rename_set
      [
        mk ~name:"two"
          ~post:[ atom "R" [ cs "a"; var "x" ]; atom "R" [ cs "b"; var "y" ] ]
          ~head:[ atom "R" [ cs "t"; var "x" ] ]
          [];
      ]
  in
  let g = Coordination_graph.build queries in
  match Coordination.Single_connected.check g with
  | Error (Coordination.Single_connected.Too_many_posts 0) -> ()
  | _ -> Alcotest.fail "two posts rejected"

let test_check_rejects_diamond () =
  (* root -> m1 -> sink and root -> m2 -> sink: two simple paths from
     root to sink (m1 and m2 both offer the head "mid" the root wants,
     and both need the sink). *)
  let provider name body_dest =
    mk ~name
      ~post:[ atom "R" [ cs "sink"; var "w" ] ]
      ~head:[ atom "R" [ cs name; var "v" ] ]
      [ atom "F" [ var "v"; cs body_dest ] ]
  in
  let queries =
    Query.rename_set
      [
        mk ~name:"root"
          ~post:[ atom "R" [ cs "mid"; var "x" ] ]
          ~head:[ atom "R" [ cs "root"; var "x" ] ]
          [];
        (let q = provider "m1" "Zurich" in
         { q with Query.head = [ atom "R" [ cs "mid"; var "v" ] ] });
        (let q = provider "m2" "Paris" in
         { q with Query.head = [ atom "R" [ cs "mid"; var "v" ] ] });
        mk ~name:"sink" ~post:[] ~head:[ atom "R" [ cs "sink"; var "s" ] ]
          [ atom "F" [ var "s"; var "ds" ] ];
      ]
  in
  let g = Coordination_graph.build queries in
  (* root -> m1 -> sink and root -> m2 -> sink: two simple paths
     root ~> sink. *)
  match Coordination.Single_connected.check g with
  | Error (Coordination.Single_connected.Not_single_connected _) -> ()
  | Ok () -> Alcotest.fail "diamond must be rejected"
  | Error e ->
    Alcotest.failf "wrong error: %a"
      (Coordination.Single_connected.pp_error queries)
      e

let test_check_rejects_cycle () =
  let queries =
    Query.rename_set
      [
        mk ~name:"a"
          ~post:[ atom "R" [ cs "b"; var "x" ] ]
          ~head:[ atom "R" [ cs "a"; var "x" ] ]
          [];
        mk ~name:"b"
          ~post:[ atom "R" [ cs "a"; var "y" ] ]
          ~head:[ atom "R" [ cs "b"; var "y" ] ]
          [];
      ]
  in
  let g = Coordination_graph.build queries in
  match Coordination.Single_connected.check g with
  | Error (Coordination.Single_connected.Not_single_connected _) -> ()
  | _ -> Alcotest.fail "cycle rejected"

let test_solve_chooses_satisfiable_branch () =
  let db = flights_db () in
  match Coordination.Single_connected.solve db (choice_queries ()) with
  | Error _ -> Alcotest.fail "single-connected"
  | Ok outcome -> (
    match outcome.solution with
    | None -> Alcotest.fail "root+kid_zurich coordinates"
    | Some s ->
      Alcotest.(check (list string)) "root with the zurich provider"
        [ "root"; "kid_zurich" ]
        (Solution.member_names outcome.queries s);
      check_validates db outcome.queries s)

let test_solve_matches_brute () =
  let db = flights_db () in
  let queries = Query.rename_set (choice_queries ()) in
  match Coordination.Single_connected.solve db (choice_queries ()) with
  | Error _ -> Alcotest.fail "single-connected"
  | Ok outcome ->
    Alcotest.(check bool) "agrees with brute force on existence" true
      (Option.is_some outcome.solution
      = Coordination.Brute.exists_coordinating_set db queries)

let test_solve_probe_budget () =
  (* Probes stay linear in queries + edges. *)
  let db = flights_db () in
  let n = 12 in
  let input =
    List.init n (fun i ->
        let post =
          if i < n - 1 then [ atom "R" [ cs (Printf.sprintf "u%d" (i + 1)); var "y" ] ]
          else []
        in
        mk
          ~name:(Printf.sprintf "u%d" i)
          ~post
          ~head:[ atom "R" [ cs (Printf.sprintf "u%d" i); var "x" ] ]
          [ atom "F" [ var "x"; cs "Zurich" ] ])
  in
  match Coordination.Single_connected.solve db input with
  | Error _ -> Alcotest.fail "a chain is single-connected"
  | Ok outcome -> (
    Alcotest.(check bool) "linear probes" true
      (outcome.stats.db_probes <= (2 * n) + 2);
    match outcome.solution with
    | Some s ->
      Alcotest.(check int) "whole chain" n (Solution.size s);
      check_validates db outcome.queries s
    | None -> Alcotest.fail "chain coordinates")

let suite =
  [
    Alcotest.test_case "check accepts unsafe tree" `Quick test_check_accepts;
    Alcotest.test_case "check rejects two posts" `Quick test_check_rejects_two_posts;
    Alcotest.test_case "check rejects diamond" `Quick test_check_rejects_diamond;
    Alcotest.test_case "check rejects cycle" `Quick test_check_rejects_cycle;
    Alcotest.test_case "solve picks satisfiable branch" `Quick
      test_solve_chooses_satisfiable_branch;
    Alcotest.test_case "solve agrees with brute force" `Quick test_solve_matches_brute;
    Alcotest.test_case "solve probe budget" `Quick test_solve_probe_budget;
  ]
