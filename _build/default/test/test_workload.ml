(* Workload generators: PRNG determinism, scale-free shape, and the
   figure workloads' advertised properties. *)

open Relational
open Helpers

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 124 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_ranges () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let y = Prng.int_in_range rng ~lo:5 ~hi:7 in
    Alcotest.(check bool) "in closed range" true (y >= 5 && y <= 7);
    let f = Prng.float rng in
    Alcotest.(check bool) "unit float" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: non-positive bound")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_sample_distinct () =
  let rng = Prng.create 11 in
  let s = Prng.sample_distinct rng 5 10 in
  Alcotest.(check int) "five" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "bounded" true (x >= 0 && x < 10)) s

let test_prng_shuffle_permutation () =
  let rng = Prng.create 5 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  Alcotest.(check (list int)) "permutation" (List.init 50 Fun.id)
    (List.sort compare (Array.to_list a))

let test_scale_free_shape () =
  let rng = Prng.create 1 in
  let g = Workload.Scale_free.generate rng ~nodes:500 ~edges_per_node:2 in
  Alcotest.(check int) "nodes" 500 (Graphs.Digraph.node_count g);
  (* Every node except the seed points at edges_per_node (or fewer,
     early) targets. *)
  Alcotest.(check int) "node 0 out" 0 (Graphs.Digraph.out_degree g 0);
  Alcotest.(check int) "node 1 out" 1 (Graphs.Digraph.out_degree g 1);
  Alcotest.(check int) "later nodes out" 2 (Graphs.Digraph.out_degree g 100);
  (* Heavy tail: the max in-degree far exceeds the mean (~2). *)
  let hist = Workload.Scale_free.in_degree_histogram g in
  let max_deg = List.fold_left (fun m (d, _) -> max m d) 0 hist in
  Alcotest.(check bool) "heavy tail" true (max_deg >= 10);
  (* No self loops. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "no self loop" false (Graphs.Digraph.mem_edge g v v))
    (Graphs.Digraph.nodes g)

let test_social_posts () =
  let db = Database.create () in
  let r = Workload.Social.install_posts ~rows:1000 ~topics:10 db in
  Alcotest.(check int) "rows" 1000 (Relation.cardinal r);
  Alcotest.(check int) "topics" 10
    (Value.Set.cardinal (Relation.distinct_values r ~col:1));
  (* Every topic constant the generators can pick exists. *)
  for t = 0 to 9 do
    Alcotest.(check bool) "topic exists" true
      (Relation.count_matching r ~col:1 (Value.str (Workload.Social.topic t)) > 0)
  done

let test_listgen_structure () =
  let db, queries = Workload.Listgen.make ~rows:1000 ~topics:10 ~seed:3 20 in
  Alcotest.(check int) "twenty queries" 20 (List.length queries);
  let renamed = Entangled.Query.rename_set queries in
  let g = Entangled.Coordination_graph.build renamed in
  Alcotest.(check bool) "safe" true (Entangled.Safety.is_safe g);
  Alcotest.(check bool) "not unique" false (Entangled.Safety.is_unique g);
  (* Chain: i -> i+1. *)
  for i = 0 to 18 do
    Alcotest.(check bool) "chain edge" true (Graphs.Digraph.mem_edge g.graph i (i + 1))
  done;
  Alcotest.(check int) "exactly the chain" 19 (Graphs.Digraph.edge_count g.graph);
  (* Every body satisfiable, as the paper requires. *)
  Array.iter
    (fun q ->
      Alcotest.(check bool) "body satisfiable" true
        (Eval.satisfiable db q.Entangled.Query.body))
    renamed

let test_listgen_solution () =
  let db, queries = Workload.Listgen.make ~rows:1000 ~topics:10 ~seed:3 10 in
  match Coordination.Scc_algo.solve db queries with
  | Error _ -> Alcotest.fail "safe"
  | Ok outcome -> (
    (* Every suffix coordinates: n candidates, the largest is the full set. *)
    Alcotest.(check int) "all suffixes" 10 (List.length outcome.candidates);
    match outcome.solution with
    | Some s ->
      Alcotest.(check int) "full chain" 10 (Entangled.Solution.size s);
      check_validates db outcome.queries s
    | None -> Alcotest.fail "chain coordinates")

let test_netgen_structure () =
  let db, queries, g = Workload.Netgen.make ~rows:1000 ~topics:10 ~seed:4 30 in
  Alcotest.(check int) "queries = nodes" 30 (List.length queries);
  let renamed = Entangled.Query.rename_set queries in
  let cg = Entangled.Coordination_graph.build renamed in
  Alcotest.(check bool) "safe" true (Entangled.Safety.is_safe cg);
  Alcotest.(check bool) "same edges as generator graph" true
    (Graphs.Digraph.equal g cg.graph);
  match Coordination.Scc_algo.solve db queries with
  | Error _ -> Alcotest.fail "safe"
  | Ok outcome -> (
    match outcome.solution with
    | Some s -> check_validates db outcome.queries s
    | None -> Alcotest.fail "sinks always coordinate")

let test_flights_worst_case () =
  let db, queries = Workload.Flights.make_worst_case ~rows:50 ~users:8 in
  match Coordination.Consistent.solve db Workload.Flights.config queries with
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
  | Ok outcome ->
    (* Worst case: every value satisfies every query... *)
    Array.iter
      (fun opts -> Alcotest.(check int) "50 options each" 50 (Tuple.Set.cardinal opts))
      outcome.options;
    (* ...so V(Q) has exactly |table| entries and everyone survives. *)
    Alcotest.(check int) "all values inspected" 50 (List.length outcome.candidates);
    List.iter
      (fun (_, size) -> Alcotest.(check int) "nobody pruned" 8 size)
      outcome.candidates;
    Alcotest.(check int) "full coordinating set" 8 (List.length outcome.members);
    (* Probe count is linear: one per query for V(q), one per query for
       friends, one per member for grounding. *)
    Alcotest.(check int) "linear probes" (8 + 8 + 8) outcome.stats.db_probes

let test_meetings_committee () =
  let db = Database.create () in
  ignore (Workload.Meetings.install_slots db ~days:3 ~hours:2 ~rooms:2);
  let u name = Value.str name in
  (* Two committees sharing Bea; Ann (chair of the first) is only free on
     day 1. *)
  let queries =
    Workload.Meetings.committee_queries
      ~pins:[ (u "ann", 1) ]
      [ [ u "ann"; u "bea"; u "cid" ]; [ u "bea"; u "dan" ] ]
  in
  Alcotest.(check int) "four professionals" 4 (List.length queries);
  match Coordination.Consistent.solve db Workload.Meetings.config queries with
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
  | Ok outcome -> (
    (* Everyone meets: the shared member chains both committees onto the
       same (day, hour), which must be on day 1 because of Ann's pin. *)
    Alcotest.(check int) "all four coordinate" 4 (List.length outcome.members);
    (match outcome.chosen_value with
    | Some v -> Alcotest.check value_t "pinned day" (Value.str "d1") v.(0)
    | None -> Alcotest.fail "solution exists");
    match Coordination.Consistent.to_solution db outcome with
    | None -> Alcotest.fail "expressible"
    | Some (compiled, solution) -> check_validates db compiled solution)

let test_meetings_unsatisfiable_pins () =
  let db = Database.create () in
  ignore (Workload.Meetings.install_slots db ~days:2 ~hours:1 ~rooms:1);
  let u name = Value.str name in
  (* Two members of one committee pin different days: the committee can
     never meet, and because each names the other, both are cleaned
     away at every value. *)
  let queries =
    Workload.Meetings.committee_queries
      ~pins:[ (u "ann", 0); (u "bea", 1) ]
      [ [ u "ann"; u "bea" ] ]
  in
  match Coordination.Consistent.solve db Workload.Meetings.config queries with
  | Error e -> Alcotest.failf "error: %a" Coordination.Consistent.pp_error e
  | Ok outcome ->
    Alcotest.(check (list int)) "nobody meets" [] outcome.members;
    (* Brute force agrees on the compiled instance. *)
    let compiled =
      Coordination.Consistent_query.compile_set Workload.Meetings.config queries
    in
    Alcotest.(check bool) "brute agrees" false
      (Coordination.Brute.exists_coordinating_set db compiled)

let test_meetings_guards () =
  Alcotest.check_raises "tiny committee"
    (Invalid_argument "Meetings.committee_queries: committee needs >= 2 members")
    (fun () ->
      ignore (Workload.Meetings.committee_queries [ [ Value.str "solo" ] ]))

let test_movies_generator () =
  let db, queries = Workload.Movies.make () in
  Alcotest.(check int) "four queries" 4 (List.length queries);
  Alcotest.(check int) "five screenings" 5
    (Relation.cardinal (Database.relation db "M"));
  Alcotest.(check int) "eight friendships" 8
    (Relation.cardinal (Database.relation db "C"))

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "prng sample distinct" `Quick test_prng_sample_distinct;
    Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "scale-free shape" `Quick test_scale_free_shape;
    Alcotest.test_case "social posts table" `Quick test_social_posts;
    Alcotest.test_case "listgen structure" `Quick test_listgen_structure;
    Alcotest.test_case "listgen full-chain solution" `Quick test_listgen_solution;
    Alcotest.test_case "netgen structure" `Quick test_netgen_structure;
    Alcotest.test_case "flights worst case" `Quick test_flights_worst_case;
    Alcotest.test_case "movies generator" `Quick test_movies_generator;
    Alcotest.test_case "meetings: overlapping committees" `Quick
      test_meetings_committee;
    Alcotest.test_case "meetings: conflicting pins" `Quick
      test_meetings_unsatisfiable_pins;
    Alcotest.test_case "meetings: guards" `Quick test_meetings_guards;
    qtest ~count:50 "scale-free graphs are DAGs (edges point backwards)"
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Prng.create seed in
        let g = Workload.Scale_free.generate rng ~nodes:60 ~edges_per_node:2 in
        let ok = ref true in
        Graphs.Digraph.iter_edges (fun u v -> if v >= u then ok := false) g;
        !ok);
  ]
