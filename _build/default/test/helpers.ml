(* Shared builders for the test suites. *)

open Relational

let vi = Value.int
let vs = Value.str

let tup vs_list = Tuple.make vs_list

let var = Term.var
let cst v = Term.const v
let ci n = Term.int n
let cs s = Term.str s

let atom rel args = { Cq.rel; args = Array.of_list args }

(* A small flights database used across suites. *)
let flights_db () =
  let db = Database.create () in
  ignore (Database.create_table' db "F" [ "fid"; "dest" ]);
  ignore (Database.create_table' db "H" [ "hid"; "loc" ]);
  List.iter
    (fun (f, d) -> Database.insert db "F" [ vi f; vs d ])
    [ (101, "Zurich"); (102, "Zurich"); (200, "Paris"); (300, "Athens") ];
  List.iter
    (fun (h, l) -> Database.insert db "H" [ vi h; vs l ])
    [ (7, "Paris"); (8, "Athens"); (9, "Zurich") ];
  db

(* The Section 2.2 flight-hotel program (Figure 1). *)
let figure1_queries db =
  let program =
    {|
      table F(flightId, destination).
      table H(hotelId, location).
      fact F(70, Paris).   fact F(71, Paris).   fact F(80, Athens).
      fact H(7, Paris).    fact H(8, Athens).   fact H(9, Madrid).
      query qC: { R(G, x1) }            R(C, x1), Q(C, x2) :- F(x1, x), H(x2, x).
      query qG: { R(C, y1), Q(C, y2) }  R(G, y1), Q(G, y2) :- F(y1, Paris), H(y2, Paris).
      query qJ: { R(C, z1), R(G, z1) }  R(J, z1), Q(J, z2) :- F(z1, Athens), H(z2, Athens).
      query qW: { R(C, w1), Q(J, w2) }  R(W, w1), Q(W, w2) :- F(w1, Madrid), H(w2, Madrid).
    |}
  in
  Entangled.Parser.load_program db (Entangled.Parser.parse_program program)

(* Alcotest testables. *)
let value_t = Alcotest.testable Value.pp Value.equal
let tuple_t = Alcotest.testable Tuple.pp Tuple.equal
let term_t = Alcotest.testable Term.pp Term.equal

let check_validates db queries solution =
  match Entangled.Solution.validate db queries solution with
  | Ok () -> ()
  | Error m -> Alcotest.failf "solution failed Definition 1: %s" m

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)
