table F(fid, dest).
fact F(1, Zurich).
query p:  { R(C, x) } R(P, x)  :- F(x, d).
query c1: { }         R(C, u)  :- F(u, d1).
query c2: { }         R(C, v)  :- F(v, d2).
