table F(flightId, destination).
table H(hotelId, location).
fact F(70, Paris).   fact F(71, Paris).   fact F(80, Athens).
fact H(7, Paris).    fact H(8, Athens).   fact H(9, Madrid).
query qC: { R(G, x1) }            R(C, x1), Q(C, x2) :- F(x1, x), H(x2, x).
query qG: { R(C, y1), Q(C, y2) }  R(G, y1), Q(G, y2) :- F(y1, Paris), H(y2, Paris).
query qJ: { R(C, z1), R(G, z1) }  R(J, z1), Q(J, z2) :- F(z1, Athens), H(z2, Athens).
query qW: { R(C, w1), Q(J, w2) }  R(W, w1), Q(W, w2) :- F(w1, Madrid), H(w2, Madrid).
