  $ entangle check figure1.eq
  $ entangle solve figure1.eq
  $ entangle solve figure1.eq --algorithm gupta
  $ entangle solve figure1.eq --algorithm brute
  $ entangle solve unsafe.eq
  $ entangle solve figure1.eq --explain | grep -v "probes="
  $ entangle generate list -n 3 --rows 4 --seed 1
  $ entangle repl --consume <<'REPL'
  > table Flights(fid, dest).
  > fact Flights(101, Zurich).
  > query gwyneth: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).
  > \pending
  > query chris: { } R(Chris, y) :- Flights(y, Zurich).
  > query amy: { R(Ben, u) } R(Amy, u) :- Flights(u, Zurich).
  > query ben: { R(Amy, v) } R(Ben, v) :- Flights(v, Zurich).
  > \pending
  > \quit
  > REPL
