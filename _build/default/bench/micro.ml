(* Bechamel micro-benchmarks: one Test.make per figure of the paper, at a
   representative size, so regressions in the hot paths show up in CI
   without running the full sweeps. *)

open Bechamel
open Toolkit

let fig4_test =
  let db = Relational.Database.create () in
  ignore (Workload.Social.install_posts ~rows:10_000 db);
  let rng = Prng.create 1 in
  let queries = Workload.Listgen.queries rng ~n:50 in
  Test.make ~name:"fig4/list-chain-50"
    (Staged.stage (fun () ->
         ignore (Coordination.Scc_algo.solve db queries)))

let fig5_test =
  let db = Relational.Database.create () in
  ignore (Workload.Social.install_posts ~rows:10_000 db);
  let rng = Prng.create 2 in
  let g = Workload.Scale_free.generate rng ~nodes:50 ~edges_per_node:2 in
  let queries = Workload.Netgen.queries_of_graph rng g in
  Test.make ~name:"fig5/scale-free-50"
    (Staged.stage (fun () ->
         ignore (Coordination.Scc_algo.solve db queries)))

let fig6_test =
  let db = Relational.Database.create () in
  ignore (Workload.Social.install_posts ~rows:1_000 db);
  let rng = Prng.create 3 in
  let g = Workload.Scale_free.generate rng ~nodes:300 ~edges_per_node:2 in
  let queries = Workload.Netgen.queries_of_graph rng g in
  Test.make ~name:"fig6/graph-only-300"
    (Staged.stage (fun () ->
         ignore (Coordination.Scc_algo.solve ~graph_only:true db queries)))

let fig7_test =
  let db, queries = Workload.Flights.make_worst_case ~rows:300 ~users:50 in
  Test.make ~name:"fig7/consistent-300-values"
    (Staged.stage (fun () ->
         ignore (Coordination.Consistent.solve db Workload.Flights.config queries)))

let fig8_test =
  let db, queries = Workload.Flights.make_worst_case ~rows:100 ~users:50 in
  Test.make ~name:"fig8/consistent-50-queries"
    (Staged.stage (fun () ->
         ignore (Coordination.Consistent.solve db Workload.Flights.config queries)))

let tests = [ fig4_test; fig5_test; fig6_test; fig7_test; fig8_test ]

let run_all () =
  Printf.printf "\n== Bechamel micro-benchmarks (one per figure) ==\n%!";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let instances = [ Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols (Instance.monotonic_clock) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "  %-28s %12.3f us/run  (r2=%s)\n" name (est /. 1e3)
              (match Analyze.OLS.r_square ols_result with
              | Some r2 -> Printf.sprintf "%.4f" r2
              | None -> "n/a")
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
        analysis)
    tests;
  Printf.printf "%!"
