bench/ablations.ml: Array Coordination Cq Database Domain Entangled Eval Int64 List Option Printf Prng Relation Relational Term Value Workload
