bench/main.ml: Ablations Arg Figures List Micro Printf
