bench/micro.ml: Analyze Bechamel Benchmark Coordination Hashtbl Instance List Measure Printf Prng Relational Staged Test Time Toolkit Workload
