bench/main.mli:
