bench/figures.ml: Coordination Entangled Filename Hashtbl Int64 List Printf Prng Relational String Workload
