(* The flight-hotel coordination example of Section 2.2 (Figure 1).

   Chris wants to fly with Guy (any destination); Guy wants Paris and the
   same flight and hotel as Chris; Jonny wants Athens on Chris and Guy's
   flight; Will wants Madrid on Chris's flight and Jonny's hotel.

   The queries are safe but not unique.  The SCC structure is
   {qC, qG}, {qJ}, {qW}: Chris and Guy can always travel together if a
   flight+hotel pair exists; Jonny and Will only join when the combined
   requirements are satisfiable (they are not, here: Jonny insists on
   Athens while Guy insists on Paris). *)

open Relational
open Entangled

let program =
  {|
    table F(flightId, destination).
    table H(hotelId, location).

    fact F(70, Paris).   fact F(71, Paris).   fact F(80, Athens).
    fact H(7, Paris).    fact H(8, Athens).   fact H(9, Madrid).

    -- Figure 1, in our concrete syntax (C, G, J, W are user constants;
    -- R coordinates flights, Q coordinates hotels).
    query qC: { R(G, x1) }            R(C, x1), Q(C, x2) :- F(x1, x), H(x2, x).
    query qG: { R(C, y1), Q(C, y2) }  R(G, y1), Q(G, y2) :- F(y1, Paris), H(y2, Paris).
    query qJ: { R(C, z1), R(G, z1) }  R(J, z1), Q(J, z2) :- F(z1, Athens), H(z2, Athens).
    query qW: { R(C, w1), Q(J, w2) }  R(W, w1), Q(W, w2) :- F(w1, Madrid), H(w2, Madrid).
  |}

let () =
  let db = Database.create () in
  let input = Parser.load_program db (Parser.parse_program program) in
  let queries = Query.rename_set input in
  let graph = Coordination_graph.build queries in

  Format.printf "Extended coordination graph (Figure 2):@.%a@.@."
    Coordination_graph.pp graph;
  Format.printf "Safe: %b   Unique: %b@.@." (Safety.is_safe graph)
    (Safety.is_unique graph);

  let scc = Graphs.Scc.compute graph.graph in
  Format.printf "Strongly connected components:@.";
  Array.iteri
    (fun c members ->
      Format.printf "  C%d = {%s}@." c
        (String.concat ", "
           (List.map (fun i -> queries.(i).Query.name) members)))
    scc.members;

  match Coordination.Scc_algo.solve db input with
  | Error _ -> Format.printf "unexpected: unsafe@."
  | Ok outcome ->
    Format.printf "@.Candidate coordinating sets (reverse topological order):@.";
    List.iter
      (fun (c : Coordination.Scc_algo.candidate) ->
        Format.printf "  {%s}@."
          (String.concat ", "
             (List.map (fun i -> outcome.queries.(i).Query.name) c.covered)))
      outcome.candidates;
    (match outcome.solution with
    | None -> Format.printf "@.No coordinating set.@."
    | Some s ->
      Format.printf "@.Chosen (maximal): %a@."
        (Solution.pp outcome.queries) s;
      (match Solution.validate db outcome.queries s with
      | Ok () -> Format.printf "Validated against Definition 1.@."
      | Error m -> Format.printf "VALIDATION FAILED: %s@." m));
    Format.printf "@.DOT of the collapsed graph:@.%s@."
      (Graphs.Dot.to_string
         ~label:(fun i -> outcome.queries.(i).Query.name)
         graph.graph)
