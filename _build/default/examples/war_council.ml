(* The introduction's MMO scenario: "players in an MMO game figuring out
   a battle plan".  Three vanguard players insist on storming the same
   gate together (a genuine 3-cycle in the coordination graph — one
   strongly connected component), a healer follows the vanguard, and a
   scout follows the healer but insists on a gate with a postern — which
   no gate with enough siege cover has, so the scout stays home.

   This exercises what Figure 1 cannot: an SCC of size three, plus the
   --explain-style trace showing each candidate set's combined SQL. *)

let program =
  {|
    -- Gates(gateId, wall, cover): siege targets and their arrow cover.
    table Gates(gateId, wall, cover).
    fact Gates(1, North, Heavy).
    fact Gates(2, North, Light).
    fact Gates(3, East,  Heavy).
    fact Gates(4, East,  Postern).

    -- The vanguard: a 3-cycle, everyone on the same gate.
    query ana:  { R(Boris, g) }  R(Ana, g)   :- Gates(g, w, Heavy).
    query boris:{ R(Celia, g) }  R(Boris, g) :- Gates(g, w, Heavy).
    query celia:{ R(Ana, g) }    R(Celia, g) :- Gates(g, w, Heavy).

    -- The healer shadows Ana; any cover will do.
    query dora: { R(Ana, h) }    R(Dora, h)  :- Gates(h, w, c).

    -- The scout shadows Dora but needs a postern on the same gate.
    query egon: { R(Dora, p) }   R(Egon, p)  :- Gates(p, w, Postern).
  |}

let () =
  let db = Relational.Database.create () in
  let input =
    Entangled.Parser.load_program db (Entangled.Parser.parse_program program)
  in
  let queries = Entangled.Query.rename_set input in
  let graph = Entangled.Coordination_graph.build queries in
  let scc = Graphs.Scc.compute graph.graph in
  Format.printf "Strongly connected components:@.";
  Array.iteri
    (fun c members ->
      Format.printf "  C%d = {%s}@." c
        (String.concat ", "
           (List.map (fun i -> queries.(i).Entangled.Query.name) members)))
    scc.members;
  Format.printf "@.";
  match Coordination.Explain.trace db input with
  | Error _ -> Format.printf "unexpected: unsafe@."
  | Ok report ->
    Format.printf "%a@." (Coordination.Explain.pp db) report;
    (match report.outcome.solution with
    | Some s -> (
      match Entangled.Solution.validate db report.outcome.queries s with
      | Ok () -> Format.printf "@.Validated against Definition 1.@."
      | Error m -> Format.printf "@.VALIDATION FAILED: %s@." m)
    | None -> ())
