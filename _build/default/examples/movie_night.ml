(* The movie-night example of Section 5: an UNSAFE query set (each fan's
   friend variable can unify with several heads) solved by the Consistent
   Coordination Algorithm, coordinating on the cinema attribute. *)

open Relational
module Cquery = Coordination.Consistent_query

let name_of v = Value.to_string v

let () =
  let db, queries = Workload.Movies.make () in
  let config = Workload.Movies.config in

  Format.printf "The queries (typed, Section 5 form):@.";
  List.iter (fun q -> Format.printf "%a@." (Cquery.pp config) q) queries;

  (* Their compilation to general entangled queries is unsafe: *)
  let compiled = Cquery.compile_set config queries in
  let graph = Entangled.Coordination_graph.build compiled in
  Format.printf "@.As general entangled queries the set is safe: %b@."
    (Entangled.Safety.is_safe graph);

  match Coordination.Consistent.solve db config queries with
  | Error e -> Format.printf "error: %a@." Coordination.Consistent.pp_error e
  | Ok outcome ->
    Format.printf "@.Option lists V(q) (the paper's 'possible cinemas'):@.";
    Array.iteri
      (fun i opts ->
        Format.printf "  %-6s: {%s}@."
          (name_of outcome.queries.(i).Cquery.user)
          (String.concat ", "
             (List.map
                (fun t -> Value.to_string t.(0))
                (Tuple.Set.elements opts))))
      outcome.options;

    Format.printf "@.Surviving set size per candidate cinema:@.";
    List.iter
      (fun (v, size) ->
        Format.printf "  %-10s -> %d member(s)@." (Value.to_string v.(0)) size)
      outcome.candidates;

    (match outcome.chosen_value with
    | None -> Format.printf "@.No coordinating set.@."
    | Some v ->
      Format.printf "@.Chosen cinema: %s; moviegoers and their movie ids:@."
        (Value.to_string v.(0));
      List.iter
        (fun (user, key) ->
          Format.printf "  %-6s -> movie id %s@." (name_of user)
            (Value.to_string key))
        outcome.choices);

    (* Cross-check in the general formalism. *)
    (match Coordination.Consistent.to_solution db outcome with
    | None -> ()
    | Some (compiled, solution) -> (
      match Entangled.Solution.validate db compiled solution with
      | Ok () -> Format.printf "@.Validated against Definition 1.@."
      | Error m -> Format.printf "@.VALIDATION FAILED: %s@." m));
    Format.printf "Stats: %a@." Coordination.Stats.pp outcome.stats
