(* Quickstart: the introduction's example.  Gwyneth wants to fly with
   Chris to Zurich; Chris just wants a flight to Zurich.  The pair of
   queries is safe but NOT unique (Chris's query alone also coordinates),
   so the SCC Coordination Algorithm applies where the Gupta et al.
   baseline would refuse. *)

let program =
  {|
    table Flights(flightId, destination).
    fact Flights(101, Zurich).
    fact Flights(102, Zurich).
    fact Flights(200, Paris).

    query gwyneth: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).
    query chris:   { } R(Chris, y) :- Flights(y, Zurich).
  |}

let () =
  let db = Relational.Database.create () in
  let queries =
    Entangled.Parser.load_program db (Entangled.Parser.parse_program program)
  in
  Format.printf "Queries:@.";
  List.iter (fun q -> Format.printf "  %a@." Entangled.Query.pp q) queries;

  (* The baseline refuses: the set is not unique. *)
  (match Coordination.Gupta.solve db queries with
  | Error e ->
    Format.printf "@.Gupta et al. baseline: %a@."
      (Coordination.Gupta.pp_error (Entangled.Query.rename_set queries))
      e
  | Ok _ -> Format.printf "@.Gupta et al. baseline: unexpectedly succeeded@.");

  (* The SCC algorithm coordinates Gwyneth and Chris on one flight. *)
  match Coordination.Scc_algo.solve db queries with
  | Error (Coordination.Scc_algo.Not_safe _) ->
    Format.printf "SCC algorithm: query set is unsafe?!@."
  | Ok outcome -> (
    match outcome.solution with
    | None -> Format.printf "@.No coordinating set exists.@."
    | Some solution ->
      Format.printf "@.SCC algorithm found: %a@."
        (Entangled.Solution.pp outcome.queries)
        solution;
      (match Entangled.Solution.validate db outcome.queries solution with
      | Ok () -> Format.printf "Validated against Definition 1.@."
      | Error m -> Format.printf "VALIDATION FAILED: %s@." m);
      Format.printf "Stats: %a@." Coordination.Stats.pp outcome.stats)
