(* The hardness constructions of Section 3, executed.

   Theorem 1: a 3SAT formula becomes an entangled-query instance over a
   database containing just D = {0, 1}; a coordinating set exists iff the
   formula is satisfiable.  Theorem 2: the one-literal-witness gadget
   (Figure 9) makes the MAXIMUM coordinating set reach k+m iff the
   formula is satisfiable.  We decode assignments back and check them
   with an independent DPLL solver. *)

let show_formula f = Format.printf "Formula: %a@." Sat.Cnf.pp f

let run_theorem1 f =
  show_formula f;
  let inst = Sat.Reduce.to_entangled f in
  Format.printf "Reduced to %d entangled queries over D = {0,1}:@."
    (Array.length inst.queries);
  Array.iter
    (fun q -> Format.printf "  %a@." Entangled.Query.pp q)
    inst.queries;
  let sat = Sat.Dpll.satisfiable f in
  let solution = Coordination.Brute.maximum inst.db inst.queries in
  (match solution with
  | None -> Format.printf "No coordinating set; DPLL says satisfiable=%b@." sat
  | Some s ->
    let assignment = Sat.Reduce.decode_entangled f inst s.members in
    Format.printf
      "Coordinating set of size %d; decoded assignment satisfies the \
       formula: %b (DPLL: %b)@."
      (Entangled.Solution.size s)
      (Sat.Cnf.eval f assignment) sat);
  Format.printf "@."

let run_theorem2 f =
  show_formula f;
  let inst = Sat.Reduce.to_entangled_max f in
  Format.printf
    "Theorem 2 gadget: %d safe queries; target size k+m = %d@."
    (Array.length inst.mqueries) inst.target;
  let max_size =
    if Array.length inst.mqueries <= Coordination.Brute.max_queries then
      match Coordination.Brute.maximum inst.mdb inst.mqueries with
      | None -> 0
      | Some s -> Entangled.Solution.size s
    else begin
      Format.printf "(instance too large for subset enumeration; using the \
                     analytical maximum)@.";
      Sat.Reduce.max_coordinating_size f
    end
  in
  Format.printf "Maximum coordinating set: %d (reaches target: %b; DPLL: %b)@.@."
    max_size (max_size = inst.target) (Sat.Dpll.satisfiable f)

let () =
  (* (x1 | !x2 | x3) & (x2 | !x3 | !x4) — Figure 9's formula. *)
  let satisfiable = Sat.Cnf.make ~num_vars:4 [ [ 1; -2; 3 ]; [ 2; -3; -4 ] ] in
  (* (x1|x1... ) an unsatisfiable core over 2 clauses is impossible in
     3SAT with distinct vars; use 8 clauses forcing a contradiction. *)
  let unsatisfiable =
    Sat.Cnf.make ~num_vars:3
      [
        [ 1; 2; 3 ]; [ 1; 2; -3 ]; [ 1; -2; 3 ]; [ 1; -2; -3 ];
        [ -1; 2; 3 ]; [ -1; 2; -3 ]; [ -1; -2; 3 ]; [ -1; -2; -3 ];
      ]
  in
  Format.printf "=== Theorem 1 (satisfiable input) ===@.";
  run_theorem1 satisfiable;
  Format.printf "=== Theorem 1 (unsatisfiable input) ===@.";
  run_theorem1 unsatisfiable;
  Format.printf "=== Theorem 2 (Figure 9 formula) ===@.";
  run_theorem2 satisfiable;
  Format.printf "=== Theorem 2 (unsatisfiable input) ===@.";
  run_theorem2 unsatisfiable
