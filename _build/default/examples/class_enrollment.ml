(* The introduction's class-enrollment scenario: "college students
   coordinating which classes to take" / "enrolling in a class which one
   of your friends is also taking".

   Students coordinate on the course; the section (and thus the time
   slot) is personal.  Alice insists on TWO friends in the same course —
   the k-of-friends requirement of Section 5's Generalizations, which is
   not even expressible as an entangled query; the consistent algorithm
   handles it anyway.  We solve once sequentially and once with the
   parallel value loop (the Section 6.2 future-work enhancement), then
   replay the flight scenario through the online engine (Section 7). *)

open Relational
module Cquery = Coordination.Consistent_query

let v = Value.str

let sections_schema = Schema.make "Sections" [ "secId"; "course"; "slot" ]

let config =
  Cquery.make_config ~s_schema:sections_schema ~friends:"Friends" ~answer:"R"
    ~coord_attrs:[ 0 ] (* the course *)

let () =
  let db = Database.create () in
  let sections = Database.create_table db sections_schema in
  List.iteri
    (fun i (course, slot) ->
      ignore (Relation.insert sections [| Value.Int (100 + i); v course; v slot |]))
    [
      ("Databases", "Mon9"); ("Databases", "Wed14");
      ("Compilers", "Tue10"); ("Compilers", "Thu16");
      ("Crypto", "Fri11");
    ];
  let friends = Database.create_table' db "Friends" [ "user"; "friend" ] in
  List.iter
    (fun (a, b) ->
      ignore (Relation.insert friends [| v a; v b |]);
      ignore (Relation.insert friends [| v b; v a |]))
    [ ("alice", "bob"); ("alice", "carol"); ("bob", "carol"); ("carol", "dave") ];

  let student user ?course partners =
    let course =
      match course with Some c -> Cquery.Exact (v c) | None -> Cquery.Any
    in
    Cquery.make config ~user:(v user) ~own:[ course; Cquery.Any ] ~partners
  in
  let queries =
    [
      student "alice" [ Cquery.K_friends 2 ];
      student "bob" ~course:"Databases" [ Cquery.Any_friend ];
      student "carol" [ Cquery.Any_friend ];
      student "dave" ~course:"Crypto" [ Cquery.Any_friend ];
    ]
  in
  Format.printf "Students:@.";
  List.iter (fun q -> Format.printf "%a@." (Cquery.pp config) q) queries;

  (match Coordination.Consistent.solve db config queries with
  | Error e -> Format.printf "error: %a@." Coordination.Consistent.pp_error e
  | Ok outcome ->
    Format.printf "@.Per-course surviving sets:@.";
    List.iter
      (fun (value, size) ->
        Format.printf "  %-10s -> %d student(s)@." (Value.to_string value.(0)) size)
      outcome.candidates;
    (match outcome.chosen_value with
    | None -> Format.printf "nobody can enroll together@."
    | Some value ->
      Format.printf "@.Everyone signs up for %s:@." (Value.to_string value.(0));
      List.iter
        (fun (user, key) ->
          Format.printf "  %-6s -> section %s@." (Value.to_string user)
            (Value.to_string key))
        outcome.choices));

  (* The same instance through the parallel value loop. *)
  (match Coordination.Parallel.solve ~domains:4 db config queries with
  | Error e -> Format.printf "error: %a@." Coordination.Consistent.pp_error e
  | Ok outcome ->
    Format.printf "@.Parallel solve (4 domains) agrees: %s, %d members@."
      (match outcome.chosen_value with
      | Some value -> Value.to_string value.(0)
      | None -> "-")
      (List.length outcome.members));

  (* Online coordination: queries trickle in; sets fire as soon as they
     can (Section 6.1's system flow / Section 7's online setting). *)
  Format.printf "@.-- Online flight coordination --@.";
  let fdb = Database.create () in
  ignore (Database.create_table' fdb "Flights" [ "fid"; "dest" ]);
  Database.insert fdb "Flights" [ Value.Int 101; v "Zurich" ];
  Database.insert fdb "Flights" [ Value.Int 200; v "Paris" ];
  let engine = Coordination.Online.create fdb in
  let parse = Entangled.Parser.parse_query in
  let stream =
    [
      "query gwyneth: { R(Chris, x) } R(Gwyneth, x) :- Flights(x, Zurich).";
      "query will:    { R(Chris, w) } R(Will, w) :- Flights(w, Zurich).";
      "query chris:   { } R(Chris, y) :- Flights(y, Zurich).";
    ]
  in
  List.iter
    (fun src ->
      let q = parse src in
      match Coordination.Online.submit engine q with
      | Coordinated c ->
        Format.printf "  %-8s arrives -> fires {%s}@." q.Entangled.Query.name
          (String.concat ", "
             (List.map (fun q -> q.Entangled.Query.name) c.queries))
      | Pending -> Format.printf "  %-8s arrives -> pending@." q.Entangled.Query.name
      | Rejected_unsafe _ ->
        Format.printf "  %-8s arrives -> rejected (unsafe)@."
          q.Entangled.Query.name)
    stream;
  Format.printf "  still pending: [%s]@."
    (String.concat ", "
       (List.map
          (fun q -> q.Entangled.Query.name)
          (Coordination.Online.pending engine)))
