examples/sat_hardness.mli:
