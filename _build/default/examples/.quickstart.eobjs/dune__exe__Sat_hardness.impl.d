examples/sat_hardness.ml: Array Coordination Entangled Format Sat
