examples/class_enrollment.ml: Array Coordination Database Entangled Format List Relation Relational Schema String Value
