examples/flight_hotel.ml: Array Coordination Coordination_graph Database Entangled Format Graphs List Parser Query Relational Safety Solution String
