examples/quickstart.mli:
