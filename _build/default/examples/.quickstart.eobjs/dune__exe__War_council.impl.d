examples/war_council.ml: Array Coordination Entangled Format Graphs List Relational String
