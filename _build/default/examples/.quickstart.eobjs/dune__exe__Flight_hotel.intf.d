examples/flight_hotel.mli:
