examples/quickstart.ml: Coordination Entangled Format List Relational
