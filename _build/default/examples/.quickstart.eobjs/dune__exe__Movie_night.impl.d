examples/movie_night.ml: Array Coordination Entangled Format List Relational String Tuple Value Workload
