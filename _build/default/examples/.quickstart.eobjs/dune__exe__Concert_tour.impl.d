examples/concert_tour.ml: Array Coordination Database Entangled Format List Relation Relational Value Workload
