examples/war_council.mli:
