examples/class_enrollment.mli:
