examples/concert_tour.mli:
