(* Example 2 of the paper: Coldplay fans scattered around the world each
   want to fly to some concert with at least one friend.  They coordinate
   on the flight's destination AND day (two coordination attributes);
   airline and origin are personal, and some fans pin a specific
   destination.  The schema is the Figures-7/8 flights schema. *)

open Relational
module Cquery = Coordination.Consistent_query

let v = Value.str

let () =
  let db = Database.create () in
  let flights = Database.create_table db Workload.Flights.flights_schema in
  (* fid, dest, day, src, airline.  The tour visits three cities on
     different days; fans fly in from several origins. *)
  List.iteri
    (fun i (dest, day, src, airline) ->
      ignore
        (Relation.insert flights
           [| Value.Int (100 + i); v dest; v day; v src; v airline |]))
    [
      ("Zurich", "Jun1", "NYC", "Swiss");
      ("Zurich", "Jun1", "London", "BA");
      ("Zurich", "Jun1", "Tokyo", "ANA");
      ("Paris", "Jun4", "NYC", "AF");
      ("Paris", "Jun4", "London", "BA");
      ("Madrid", "Jun7", "NYC", "Iberia");
    ];
  let friends = Database.create_table' db "Friends" [ "user"; "friend" ] in
  List.iter
    (fun (a, b) ->
      ignore (Relation.insert friends [| v a; v b |]);
      ignore (Relation.insert friends [| v b; v a |]))
    [ ("ana", "bob"); ("bob", "cleo"); ("cleo", "dan"); ("dan", "ana") ];

  let config = Workload.Flights.config in
  let fan user ~dest ~src =
    let dest = match dest with Some d -> Cquery.Exact (v d) | None -> Cquery.Any in
    let src = match src with Some s -> Cquery.Exact (v s) | None -> Cquery.Any in
    Cquery.make config ~user:(v user)
      ~own:[ dest; Cquery.Any; src; Cquery.Any ]
      ~partners:[ Cquery.Any_friend ]
  in
  let queries =
    [
      fan "ana" ~dest:None ~src:(Some "NYC");
      fan "bob" ~dest:None ~src:(Some "London");
      fan "cleo" ~dest:(Some "Zurich") ~src:(Some "Tokyo");
      fan "dan" ~dest:(Some "Madrid") ~src:(Some "NYC");
    ]
  in
  Format.printf "Fans:@.";
  List.iter (fun q -> Format.printf "%a@." (Cquery.pp config) q) queries;

  match Coordination.Consistent.solve db config queries with
  | Error e -> Format.printf "error: %a@." Coordination.Consistent.pp_error e
  | Ok outcome ->
    Format.printf "@.Candidate (destination, day) values and surviving fans:@.";
    List.iter
      (fun (value, size) ->
        Format.printf "  (%s, %s) -> %d fan(s)@."
          (Value.to_string value.(0))
          (Value.to_string value.(1))
          size)
      outcome.candidates;
    (match outcome.chosen_value with
    | None -> Format.printf "@.Nobody can coordinate.@."
    | Some value ->
      Format.printf "@.Chosen concert: %s on %s.  Flights:@."
        (Value.to_string value.(0))
        (Value.to_string value.(1));
      List.iter
        (fun (user, fid) ->
          Format.printf "  %-5s books flight %s@." (Value.to_string user)
            (Value.to_string fid))
        outcome.choices);
    match Coordination.Consistent.to_solution db outcome with
    | None -> ()
    | Some (compiled, solution) -> (
      match Entangled.Solution.validate db compiled solution with
      | Ok () -> Format.printf "Validated against Definition 1.@."
      | Error m -> Format.printf "VALIDATION FAILED: %s@." m)
